"""`python -m repro` — query a serialized venue from the shell.

Workflow::

    # export a venue (e.g. from a generator or your own builder)
    python -m repro export-fig1 venue.json

    # inspect it
    python -m repro info venue.json

    # ask for routes
    python -m repro query venue.json \
        --from 7.4,39.5,0 --to 23.3,31.4,0 \
        --delta 60 --keywords latte,apple --k 3 --algorithm ToE

    # draw a floor with the best route
    python -m repro render venue.json --floor 0 --out floor.svg \
        --from 7.4,39.5,0 --to 23.3,31.4,0 --delta 60 --keywords latte

    # bake the built indexes into a serve snapshot, then serve it
    python -m repro snapshot venue.json venue.snap.json
    python -m repro serve venue.snap.json --workers 2 --port 8080

    # host several venues in one server and hot-swap one of them
    python -m repro serve --venue mall-a=a.snap --venue airport-b=b.snap
    python -m repro ingest --venue mall-a a.v2.snap --server \
        http://127.0.0.1:8080

    # tail retained request traces (sheds, errors, slow, sampled)
    python -m repro trace --server http://127.0.0.1:8080 --follow
    python -m repro trace 9f2c4a1d0b3e5f67   # one span tree by id
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.core.directions import render_directions
from repro.datasets import paper_fig1
from repro.geometry import Point
from repro.space import load_space, save_space
from repro.viz import RouteStyle, render_svg, save_svg


def _parse_point(text: str) -> Point:
    parts = [float(v) for v in text.split(",")]
    if len(parts) == 2:
        parts.append(0.0)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"point must be 'x,y' or 'x,y,level', got {text!r}")
    return Point(parts[0], parts[1], parts[2])


def _cmd_export_fig1(args) -> int:
    fixture = paper_fig1()
    save_space(args.path, fixture.space, fixture.kindex)
    print(f"wrote {fixture.space} to {args.path}")
    return 0


def _cmd_info(args) -> int:
    space, kindex = load_space(args.path)
    print(space)
    if kindex is not None:
        stats = kindex.stats()
        print(f"keywords: {int(stats['num_iwords'])} i-words, "
              f"{int(stats['num_twords'])} t-words, "
              f"{int(stats['num_labelled_partitions'])} labelled partitions")
    by_kind = {}
    for p in space.partitions.values():
        by_kind[p.kind.value] = by_kind.get(p.kind.value, 0) + 1
    print("partitions by kind:",
          ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())))
    return 0


def _load_engine(path):
    space, kindex = load_space(path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    return space, kindex, IKRQEngine(space, kindex)


def _cmd_query(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    query = IKRQ(ps=args.from_point, pt=args.to_point, delta=args.delta,
                 keywords=tuple(args.keywords.split(",")), k=args.k,
                 alpha=args.alpha, tau=args.tau)
    if args.workers > 0:
        service = QueryService(engine, workers=args.workers)
        answer = service.search_batch(
            [query], algorithm=args.algorithm, workers=args.workers)[0]
    else:
        answer = engine.search(query, algorithm=args.algorithm)
    if not answer.routes:
        print("no feasible route")
        return 1
    for rank, result in enumerate(answer.routes, start=1):
        print(f"#{rank}: ψ={result.score:.4f} ρ={result.relevance:.3f} "
              f"δ={result.distance:.1f} m")
        if args.directions:
            ctx = engine.context(answer.query)
            print(render_directions(ctx, result.route))
        else:
            print("   " + result.route.describe(space))
    return 0


def _cmd_render(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    routes = []
    styles = []
    markers = []
    if args.from_point and args.to_point and args.keywords:
        answer = engine.query(
            ps=args.from_point, pt=args.to_point, delta=args.delta,
            keywords=args.keywords.split(","), k=args.k,
            algorithm=args.algorithm)
        for i, result in enumerate(answer.routes):
            routes.append(result.route)
            styles.append(RouteStyle(
                color=["#d62728", "#1f77b4", "#2ca02c"][i % 3],
                label=f"#{i + 1} ψ={result.score:.3f}"))
        markers = [("ps", args.from_point), ("pt", args.to_point)]
    svg = render_svg(space, floor=args.floor, kindex=kindex,
                     routes=routes, route_styles=styles, markers=markers)
    save_svg(args.out, svg)
    print(f"wrote {args.out}")
    return 0


def _resolve_snapshot(path: str,
                      out: Optional[str] = None,
                      warm_matrix: bool = False) -> tuple:
    """The snapshot file to serve: ``path`` itself when it already is
    one (JSON v1 or binary v2), else a snapshot baked from the venue
    file (written to ``out`` or a temporary file).  Returns
    ``(snapshot_path, is_temporary)`` so the caller can clean a baked
    temporary up on exit."""
    from repro.serve import (is_binary_snapshot, is_snapshot_document,
                             save_snapshot)
    if is_binary_snapshot(path):
        return path, False
    doc = json.loads(Path(path).read_text())
    if is_snapshot_document(doc):
        return path, False
    space, kindex = load_space(path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    engine = IKRQEngine(space, kindex)
    if warm_matrix:
        engine.door_matrix()
    is_temporary = out is None
    if is_temporary:
        handle = tempfile.NamedTemporaryFile(
            prefix="repro-snapshot-", suffix=".json", delete=False)
        handle.close()
        out = handle.name
    save_snapshot(out, engine)
    return out, is_temporary


def _cmd_snapshot(args) -> int:
    from repro.serve import save_snapshot
    space, kindex = load_space(args.path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    engine = IKRQEngine(space, kindex)
    if args.warm_matrix:
        engine.door_matrix()
    save_snapshot(args.out, engine, matrix_rows=args.matrix_rows,
                  binary=args.binary)
    size = Path(args.out).stat().st_size
    encoding = "binary v2" if args.binary else "JSON v1"
    print(f"wrote {encoding} snapshot of {space} to {args.out} "
          f"({size} bytes, {engine.graph.num_edges()} CSR edges, "
          f"{engine._matrix.num_cached_rows() if engine._matrix else 0} "
          f"warm matrix rows)")
    return 0


def _post_json(base: str, path: str, doc: dict, timeout: float = 120.0):
    """POST a JSON document; returns the decoded JSON response."""
    import urllib.error
    import urllib.request

    body = json.dumps(doc).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return json.loads(err.read())


def _serve_smoke(server, venues: dict) -> int:
    """In-process smoke: fig1 queries over HTTP for every hosted venue,
    byte-identity checked against local engines, a hot-swap ingest
    round-trip, /venues + /metrics scraped, clean shutdown."""
    import urllib.request

    from repro.serve import (answer_to_wire, canonical_json, load_snapshot,
                             query_to_wire)

    engines = {venue: load_snapshot(path) for venue, path in venues.items()}
    fixture = paper_fig1()
    cases = [
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
              keywords=("latte", "apple"), k=3), "ToE"),
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
              keywords=("coffee",), k=2), "KoE"),
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=70.0,
              keywords=("phone", "coffee"), k=2), "KoE*"),
        (IKRQ(ps=fixture.pt, pt=fixture.ps, delta=60.0,
              keywords=("latte",), k=1), "ToE"),
    ]

    def check_venue(base: str, venue: str, generation=None) -> bool:
        engine = engines[venue]
        for query, algorithm in cases:
            doc = _post_json(base, "/search",
                             {"venue": venue,
                              "query": query_to_wire(query),
                              "algorithm": algorithm}, timeout=60)
            if doc.get("status") != "ok":
                print(f"smoke FAILED: {venue}/{algorithm} -> {doc}")
                return False
            if generation is not None and doc.get("generation") != generation:
                print(f"smoke FAILED: {venue} answered from generation "
                      f"{doc.get('generation')}, expected {generation}")
                return False
            expected = answer_to_wire(engine.search(query, algorithm))
            got = {"algorithm": doc["algorithm"], "routes": doc["routes"]}
            if canonical_json(got) != canonical_json(expected):
                print(f"smoke FAILED: {venue}/{algorithm} answer differs "
                      "from sequential engine.search")
                return False
        return True

    host, port = server.start()
    base = f"http://{host}:{port}"
    try:
        for venue in sorted(venues):
            if not check_venue(base, venue, generation=1):
                return 1
        # Hot-swap round trip: re-ingest the first venue's snapshot as
        # generation 2 and verify answers stay byte-identical.
        swap_venue = sorted(venues)[0]
        swap = _post_json(base, "/ingest",
                          {"venue": swap_venue,
                           "snapshot": venues[swap_venue], "wait": True})
        if swap.get("status") != "ok" or swap.get("generation") != 2:
            print(f"smoke FAILED: ingest -> {swap}")
            return 1
        if not check_venue(base, swap_venue, generation=2):
            return 1
        with urllib.request.urlopen(base + "/venues", timeout=30) as resp:
            listing = json.loads(resp.read())
        listed = {doc["venue"]: doc for doc in listing.get("venues", [])}
        if set(listed) != set(venues) \
                or listed[swap_venue]["active_generation"] != 2:
            print(f"smoke FAILED: /venues -> {listing}")
            return 1
        # Trace round trip: force one traced request, fetch its span
        # tree back from /debug/traces/<id>, check the stage names and
        # that the recorded stages sum within the end-to-end latency.
        # The query must be one the earlier checks did NOT ask — an
        # answer-cache hit would (correctly) skip the engine stages.
        query = IKRQ(ps=fixture.ps, pt=fixture.pt, delta=65.0,
                     keywords=("latte", "apple"), k=2)
        algorithm = "ToE"
        traced = _post_json(base, "/search",
                            {"venue": swap_venue,
                             "query": query_to_wire(query),
                             "algorithm": algorithm, "trace": True},
                            timeout=60)
        trace_id = traced.get("trace_id")
        if traced.get("status") != "ok" or not trace_id:
            print(f"smoke FAILED: traced search -> {traced}")
            return 1
        with urllib.request.urlopen(base + f"/debug/traces/{trace_id}",
                                    timeout=30) as resp:
            trace_doc = json.loads(resp.read())["trace"]
        if trace_doc.get("trace_id") != trace_id:
            print(f"smoke FAILED: trace_id did not round-trip: "
                  f"{trace_doc.get('trace_id')} != {trace_id}")
            return 1
        names = set()

        def _walk(spans):
            for span in spans:
                names.add(span.get("name"))
                _walk(span.get("children", []))

        _walk(trace_doc.get("spans", []))
        expected_stages = {"admission", "generation_acquire",
                           "shard_dispatch", "queue_wait", "wire_decode",
                           "engine", "relaxation", "lower_bound", "merge"}
        if not expected_stages <= names:
            print(f"smoke FAILED: trace missing stages "
                  f"{sorted(expected_stages - names)} (got {sorted(names)})")
            return 1
        top_ms = sum(span.get("duration_ms", 0.0)
                     for span in trace_doc.get("spans", []))
        if top_ms > trace_doc.get("duration_ms", 0.0) + 0.001:
            print(f"smoke FAILED: stage durations sum {top_ms:.3f} ms "
                  f"beyond end-to-end {trace_doc.get('duration_ms')} ms")
            return 1
        # Slow-query path: drop the threshold so a normal request
        # counts as deliberately slow, then check it was retained
        # with the slow flag (and without a trace=true body).
        policy = server.dispatcher.trace_policy
        saved_slow_ms = policy.slow_ms
        policy.slow_ms = 0.0001
        try:
            slow = _post_json(base, "/search",
                              {"venue": swap_venue,
                               "query": query_to_wire(query),
                               "algorithm": algorithm}, timeout=60)
        finally:
            policy.slow_ms = saved_slow_ms
        slow_id = slow.get("trace_id")
        with urllib.request.urlopen(base + f"/debug/traces/{slow_id}",
                                    timeout=30) as resp:
            slow_doc = json.loads(resp.read())["trace"]
        if not slow_doc.get("slow") or slow_doc.get("reason") != "slow":
            print(f"smoke FAILED: slow query not retained as slow: "
                  f"{slow_doc.get('slow')!r}/{slow_doc.get('reason')!r}")
            return 1
        # Dynamic delta step: close a door on the best route and
        # relabel a partition's i-word through POST /delta (no
        # ingest), then verify the served answer — same generation,
        # bumped dynamic_version — is byte-identical to an engine
        # rebuilt on the physically edited venue.  The same query was
        # asked pre-delta above, so this also proves the per-shard
        # answer/endpoint caches cannot leak a pre-closure result.
        from repro.core import IKRQEngine as _Engine
        from repro.dynamic import ClosureOverlay, apply_closures
        from repro.dynamic.state import apply_keyword_ops
        engine = engines[swap_venue]
        baseline = engine.search(query, algorithm)
        if not baseline.routes or not baseline.routes[0].route.doors:
            print("smoke FAILED: no doored baseline route for the "
                  "delta step")
            return 1
        closed_door = baseline.routes[0].route.doors[0]
        labelled = sorted(engine.kindex.labelled_partitions())[0]
        kw_ops = [{"op": "set_iword", "pid": labelled, "iword": "latte"}]
        applied = _post_json(base, "/delta",
                             {"venue": swap_venue,
                              "ops": [{"op": "close_door",
                                       "did": closed_door}] + kw_ops},
                             timeout=60)
        if applied.get("status") != "ok" or not applied.get(
                "keyword_broadcast"):
            print(f"smoke FAILED: delta -> {applied}")
            return 1
        kindex2 = apply_keyword_ops(engine.kindex, kw_ops)
        closed_space = apply_closures(
            engine.space, ClosureOverlay(frozenset({closed_door})))
        expected_closed = answer_to_wire(
            _Engine(closed_space, kindex2).search(query, algorithm))
        served = _post_json(base, "/search",
                            {"venue": swap_venue,
                             "query": query_to_wire(query),
                             "algorithm": algorithm}, timeout=60)
        if (served.get("status") != "ok"
                or served.get("generation") != 2
                or served.get("dynamic_version") != applied["version"]
                or canonical_json({"algorithm": served["algorithm"],
                                   "routes": served["routes"]})
                != canonical_json(expected_closed)):
            print(f"smoke FAILED: post-delta answer differs from the "
                  f"rebuilt edited venue (status "
                  f"{served.get('status')}, generation "
                  f"{served.get('generation')}, dynamic_version "
                  f"{served.get('dynamic_version')})")
            return 1
        # Swap the persistent closure for a weekly schedule closing
        # the same door except during the week's first second: a
        # query carrying "at" inside the closed window must match the
        # closure answer; one without "at" sees the door open.
        rescheduled = _post_json(
            base, "/delta",
            {"venue": swap_venue,
             "ops": [{"op": "open_door", "did": closed_door},
                     {"op": "set_schedule", "did": closed_door,
                      "open": [[0.0, 1.0]]}]}, timeout=60)
        if rescheduled.get("status") != "ok":
            print(f"smoke FAILED: schedule delta -> {rescheduled}")
            return 1
        expected_open = answer_to_wire(
            _Engine(engine.space, kindex2).search(query, algorithm))
        for at, expected in ((7200.0, expected_closed),
                             (None, expected_open)):
            body = {"venue": swap_venue, "query": query_to_wire(query),
                    "algorithm": algorithm}
            if at is not None:
                body["at"] = at
            timed = _post_json(base, "/search", body, timeout=60)
            got = {"algorithm": timed.get("algorithm"),
                   "routes": timed.get("routes")}
            if (timed.get("status") != "ok"
                    or canonical_json(got) != canonical_json(expected)):
                print(f"smoke FAILED: scheduled-door answer at={at!r} "
                      f"differs from the rebuilt venue")
                return 1
        with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
            health = json.loads(resp.read())
        with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
            metrics = resp.read().decode("utf-8")
        for series in ("ikrq_requests_total", "ikrq_shard_queries_served",
                       "ikrq_request_latency_seconds_bucket",
                       "ikrq_shard_search_latency_seconds_bucket",
                       "ikrq_stage_latency_seconds_bucket",
                       'stage="engine"', 'stage="queue_wait"',
                       "ikrq_search_expansions",
                       "ikrq_venue_active_generation", "ikrq_venues",
                       "ikrq_shard_kernel_info",
                       "ikrq_shard_up", "ikrq_live_shards",
                       "ikrq_delta_total",
                       f'venue="{swap_venue}"'):
            if series not in metrics:
                print(f"smoke FAILED: /metrics missing {series!r}")
                return 1
    finally:
        server.shutdown()
    served = sum(
        int(line.rsplit(" ", 1)[1])
        for line in metrics.splitlines()
        if line.startswith("ikrq_shard_queries_served{shard="))
    kernels = sorted({part.split('"')[1]
                      for line in metrics.splitlines()
                      if line.startswith("ikrq_shard_kernel_info{")
                      for part in line.split(",")
                      if part.strip().startswith("kernel=")})
    print(f"serve smoke ok: {len(venues)} venue(s) x {len(cases)} queries "
          f"byte-identical over HTTP (before and after a generation-2 "
          f"hot-swap of {swap_venue!r}), health={health['status']}, "
          f"shards={health['shards']}, shard queries={served}, "
          f"kernel={'/'.join(kernels) or 'unknown'}, "
          f"trace {trace_id} round-tripped with all 9 stages, "
          f"slow-query trace retained, delta (closure + keyword + "
          f"schedule) byte-identical to the rebuilt venue, clean "
          f"shutdown")
    return 0


def _parse_venue_spec(text: str):
    venue, sep, path = text.partition("=")
    if not sep or not venue.strip() or not path.strip():
        raise argparse.ArgumentTypeError(
            f"--venue takes ID=PATH (e.g. mall-a=a.snap), got {text!r}")
    return venue.strip(), path.strip()


def _cmd_serve(args) -> int:
    from repro.obs import setup_serve_logging
    from repro.serve import DEFAULT_VENUE, IKRQServer, TenantQuota

    # Structured JSON-lines serve log on stderr: slow queries, request
    # errors and GC events, each stamped with its trace_id.
    setup_serve_logging()
    specs = list(args.venues or [])
    if args.path is not None:
        specs.append((DEFAULT_VENUE, args.path))
    if not specs:
        raise SystemExit(
            "serve needs a snapshot/venue file or at least one "
            "--venue ID=PATH")
    if len({venue for venue, _ in specs}) != len(specs):
        raise SystemExit("duplicate venue ids in --venue/PATH arguments")
    venues = {}
    temporaries = []
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    default_quota = (TenantQuota(args.tenant_quota)
                     if args.tenant_quota else None)
    try:
        for venue, path in specs:
            # A single positional path keeps the PR-2 behaviour of
            # writing its baked snapshot to --snapshot.
            out = args.snapshot if path == args.path else None
            snapshot_path, is_temporary = _resolve_snapshot(
                path, out=out, warm_matrix=args.warm_matrix)
            venues[venue] = snapshot_path
            if is_temporary:
                temporaries.append(snapshot_path)
        server = IKRQServer(
            venues=venues, workers=args.workers, host=args.host,
            port=args.port, max_pending=args.queue_depth,
            deadline_s=deadline_s, default_quota=default_quota,
            mmap_snapshots=args.mmap,
            matrix_spill_dir=args.matrix_spill,
            matrix_max_rows=args.matrix_budget,
            gc_keep_last=args.gc_keep,
            kernel=args.kernel,
            trace_sample=args.trace_sample,
            slow_ms=args.slow_ms,
            trace_buffer_size=args.trace_buffer,
            heartbeat_interval=args.heartbeat_ms / 1000.0,
            heartbeat_timeout=args.heartbeat_timeout_ms / 1000.0,
            restart_backoff_s=args.restart_backoff_ms / 1000.0,
            restart_budget=args.restart_budget,
            failover_retries=args.failover_retries)
        if args.smoke:
            return _serve_smoke(server, venues)
        host, port = server.address
        quota_note = (f", per-venue quota {args.tenant_quota}"
                      if default_quota else "")
        print(f"serving {len(venues)} venue(s) "
              f"({', '.join(sorted(venues))}) on http://{host}:{port} "
              f"({args.workers} shard processes, queue depth "
              f"{args.queue_depth}{quota_note}, trace sample "
              f"{args.trace_sample:g}, slow threshold {args.slow_ms:g} ms); "
              f"POST /search, POST /ingest, GET /venues, GET /healthz, "
              f"GET /metrics, GET /debug/traces")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            print("server stopped")
        return 0
    finally:
        for path in temporaries:
            Path(path).unlink(missing_ok=True)


def _cmd_trace(args) -> int:
    """Tail / pretty-print span trees from a running server."""
    import time as _time
    import urllib.error
    import urllib.request

    from repro.obs import format_trace

    base = args.server.rstrip("/")

    def fetch(path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return json.loads(resp.read())

    if args.trace_id:
        try:
            doc = fetch(f"/debug/traces/{args.trace_id}")
        except urllib.error.HTTPError as err:
            if err.code == 404:
                print(f"trace {args.trace_id!r} not found (evicted from "
                      f"the ring, or never retained)")
                return 1
            raise
        print(format_trace(doc["trace"]))
        return 0

    params = f"?limit={args.limit}"
    if args.venue:
        params += f"&venue={args.venue}"
    seen: set = set()
    first_pass = True
    while True:
        listing = fetch("/debug/traces" + params)
        fresh = [summary for summary in
                 reversed(listing.get("traces", []))  # oldest first
                 if summary["trace_id"] not in seen]
        for summary in fresh:
            seen.add(summary["trace_id"])
            try:
                detail = fetch(f"/debug/traces/{summary['trace_id']}")
            except urllib.error.HTTPError:
                continue  # evicted between the list and the fetch
            print(format_trace(detail["trace"]))
        if first_pass and not fresh and not args.follow:
            print("no retained traces (sheds, errors, slow and sampled "
                  "requests are kept; POST /search with \"trace\": true "
                  "forces one)")
        first_pass = False
        if not args.follow:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_ingest(args) -> int:
    snapshot_path, is_temporary = _resolve_snapshot(
        args.path, out=args.snapshot, warm_matrix=args.warm_matrix)
    try:
        if is_temporary and not args.wait:
            raise SystemExit(
                "--no-wait needs a durable snapshot file: pass a baked "
                "snapshot, or --snapshot OUT to keep the baked file "
                "until the server has loaded it")
        response = _post_json(args.server.rstrip("/"), "/ingest",
                              {"venue": args.venue,
                               "snapshot": str(Path(snapshot_path).resolve()),
                               "wait": args.wait})
        status = response.get("status")
        if status == "ok":
            print(f"venue {args.venue!r} hot-swapped to generation "
                  f"{response['generation']} "
                  f"(load {response['load_seconds'] * 1000.0:.1f} ms, "
                  f"drain {response['drain_seconds'] * 1000.0:.1f} ms, "
                  f"swap {response['swap_seconds'] * 1000.0:.1f} ms)")
            return 0
        if status == "accepted":
            print(f"ingest of venue {args.venue!r} accepted; the swap "
                  f"runs in the background (watch GET /venues)")
            return 0
        print(f"ingest FAILED: {response}")
        return 1
    finally:
        if is_temporary:
            Path(snapshot_path).unlink(missing_ok=True)


def _parse_iword_spec(text: str):
    pid, sep, iword = text.partition("=")
    try:
        pid = int(pid)
    except ValueError:
        sep = ""
    if not sep or not iword.strip():
        raise argparse.ArgumentTypeError(
            f"--set-iword takes PID=IWORD (e.g. 12=coffee), got {text!r}")
    return pid, iword.strip()


def _cmd_delta(args) -> int:
    """Apply dynamic edits to a venue of a running server."""
    ops = []
    for did in args.close_door or []:
        ops.append({"op": "close_door", "did": did})
    for did in args.open_door or []:
        ops.append({"op": "open_door", "did": did})
    for pid in args.seal_partition or []:
        ops.append({"op": "seal_partition", "pid": pid})
    for pid in args.unseal_partition or []:
        ops.append({"op": "unseal_partition", "pid": pid})
    for pid, iword in args.set_iword or []:
        ops.append({"op": "set_iword", "pid": pid, "iword": iword})
    for pid in args.clear_iword or []:
        ops.append({"op": "clear_iword", "pid": pid})
    if args.ops:
        try:
            extra = json.loads(args.ops)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--ops is not valid JSON: {exc}")
        if not isinstance(extra, list):
            raise SystemExit("--ops must be a JSON list of op objects")
        ops.extend(extra)
    if not ops:
        raise SystemExit("delta needs at least one operation (e.g. "
                         "--close-door 3, --set-iword 12=coffee, or --ops)")
    response = _post_json(args.server.rstrip("/"), "/delta",
                          {"venue": args.venue, "ops": ops})
    if response.get("status") != "ok":
        print(f"delta FAILED: {response}")
        return 1
    overlay = response.get("overlay") or {}
    print(f"venue {args.venue!r} now at dynamic version "
          f"{response['version']} (keyword version "
          f"{response['keyword_version']}): "
          f"closed doors {overlay.get('closed_doors', [])}, "
          f"sealed partitions {overlay.get('sealed_partitions', [])}, "
          f"scheduled doors {response.get('scheduled_doors', [])}"
          + (f", keyword rewrite applied on "
             f"{response['shards_applied']} shard(s)"
             if response.get("keyword_broadcast") else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Query and render serialized indoor venues.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export-fig1", help="write the Fig. 1 venue")
    p.add_argument("path")
    p.set_defaults(func=_cmd_export_fig1)

    p = sub.add_parser("info", help="summarise a venue file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_info)

    def add_query_args(p, require_query: bool):
        p.add_argument("path")
        p.add_argument("--from", dest="from_point", type=_parse_point,
                       required=require_query, help="start point x,y[,level]")
        p.add_argument("--to", dest="to_point", type=_parse_point,
                       required=require_query, help="terminal point")
        p.add_argument("--delta", type=float, default=100.0,
                       help="distance constraint (m)")
        p.add_argument("--keywords", default="" if not require_query else None,
                       required=require_query,
                       help="comma-separated query keywords")
        p.add_argument("--k", type=int, default=3)
        p.add_argument("--alpha", type=float, default=0.5)
        p.add_argument("--tau", type=float, default=0.2)
        p.add_argument("--algorithm", default="ToE")

    p = sub.add_parser("query", help="run an IKRQ")
    add_query_args(p, require_query=True)
    p.add_argument("--directions", action="store_true",
                   help="print step-by-step directions")
    p.add_argument("--workers", type=int, default=0,
                   help="evaluate through the batched QueryService layer "
                        "(single queries run inline on its caches; "
                        "0 = direct engine call)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("render", help="draw a floor (optionally + routes)")
    add_query_args(p, require_query=False)
    p.add_argument("--floor", type=int, default=0)
    p.add_argument("--out", default="floor.svg")
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser(
        "snapshot", help="bake a venue + built indexes into a serve snapshot")
    p.add_argument("path", help="venue JSON file")
    p.add_argument("out", help="snapshot file to write")
    p.add_argument("--warm-matrix", action="store_true",
                   help="prebuild the KoE* door matrix into the snapshot")
    p.add_argument("--matrix-rows", type=int, default=None,
                   help="cap on persisted warm matrix rows")
    p.add_argument("--binary", action="store_true",
                   help="write the binary v2 encoding (typed-array "
                        "payload; fastest cold-start on big venues)")
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "serve", help="multi-venue sharded multi-process HTTP server "
                      "for IKRQ traffic")
    p.add_argument("path", nargs="?", default=None,
                   help="venue JSON or serve snapshot file (hosted as "
                        "venue 'default'); optional when --venue is given")
    p.add_argument("--venue", dest="venues", action="append",
                   type=_parse_venue_spec, metavar="ID=PATH",
                   help="host venue ID from the given venue/snapshot "
                        "file (repeatable)")
    p.add_argument("--workers", type=int, default=2,
                   help="shard processes (each hosts every venue behind "
                        "its own QueryServices)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission cap on in-flight requests; beyond it "
                        "requests are shed with an 'overloaded' answer")
    p.add_argument("--tenant-quota", type=int, default=0,
                   help="per-venue cap on in-flight requests (0 = none); "
                        "a venue at its quota is shed without touching "
                        "other tenants' headroom")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="per-request deadline (0 = none)")
    p.add_argument("--snapshot", default=None,
                   help="where to write the baked snapshot when PATH is "
                        "a venue file (default: a temporary file)")
    p.add_argument("--warm-matrix", action="store_true",
                   help="prebuild the KoE* door matrix before snapshotting")
    p.add_argument("--mmap", action="store_true",
                   help="memory-tier: mmap aligned binary (v2.1) "
                        "snapshots so all shard processes share one "
                        "page-cache copy of each generation's payload")
    p.add_argument("--matrix-spill", default=None, metavar="DIR",
                   help="memory-tier: spill evicted door-matrix rows "
                        "to per-engine row-cache files under DIR and "
                        "fault them back on demand")
    p.add_argument("--matrix-budget", type=int, default=None, metavar="N",
                   help="memory-tier: cap resident door-matrix rows "
                        "per loaded engine (overrides the snapshot's "
                        "baked budget; pair with --matrix-spill)")
    p.add_argument("--kernel", default="auto",
                   choices=("auto", "python", "numpy", "native"),
                   help="compute kernel backend for shard engines "
                        "(auto walks native > numpy > python and "
                        "degrades cleanly; every backend is "
                        "bit-identical)")
    p.add_argument("--gc-keep", type=int, default=None, metavar="N",
                   help="generation GC: after each ingest, keep the "
                        "newest N retired generations for rollback and "
                        "delete older snapshot files from disk "
                        "(default: keep everything)")
    p.add_argument("--trace-sample", type=float, default=0.01,
                   metavar="RATE",
                   help="probability a request is traced at full "
                        "engine-stage detail and retained in "
                        "/debug/traces (sheds, errors and slow requests "
                        "are always retained; 0 disables sampling, 1 "
                        "traces everything)")
    p.add_argument("--slow-ms", type=float, default=500.0,
                   help="slow-query threshold: requests at or over it "
                        "are always retained in /debug/traces and "
                        "logged as structured slow_query events "
                        "(0 disables)")
    p.add_argument("--trace-buffer", type=int, default=256, metavar="N",
                   help="capacity of the in-memory trace ring behind "
                        "GET /debug/traces")
    p.add_argument("--heartbeat-ms", type=float, default=2000.0,
                   help="supervisor heartbeat ping interval per shard")
    p.add_argument("--heartbeat-timeout-ms", type=float, default=30000.0,
                   help="declare a shard dead after this long without a "
                        "heartbeat or any response traffic (0 disables "
                        "the stall detector; process exits are always "
                        "caught)")
    p.add_argument("--restart-backoff-ms", type=float, default=500.0,
                   help="initial restart backoff for a dead shard "
                        "(doubles per consecutive failure, capped at 30 s)")
    p.add_argument("--restart-budget", type=int, default=5,
                   help="restarts allowed per shard per 60 s window "
                        "before it is quarantined instead of respawned")
    p.add_argument("--failover-retries", type=int, default=1,
                   help="how many sibling shards a search that hit a "
                        "dead/timed-out shard is retried on (searches "
                        "are pure, so retried answers are byte-identical)")
    p.add_argument("--smoke", action="store_true",
                   help="start, answer fig1 queries over HTTP per venue, "
                        "verify byte-identity across a hot-swap, /venues, "
                        "/metrics and a trace round-trip through "
                        "/debug/traces, then exit")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace", help="tail / pretty-print request span trees from a "
                      "running repro serve instance")
    p.add_argument("trace_id", nargs="?", default=None,
                   help="print one trace by id (default: list recent)")
    p.add_argument("--server", default="http://127.0.0.1:8080",
                   help="base URL of the running repro serve instance")
    p.add_argument("--limit", type=int, default=10,
                   help="how many recent traces to print")
    p.add_argument("--venue", default=None,
                   help="only traces of this venue")
    p.add_argument("--follow", action="store_true",
                   help="keep polling for new traces (tail -f style)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="poll interval in seconds with --follow")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "ingest", help="hot-swap a venue of a running server onto a new "
                       "snapshot generation (zero downtime)")
    p.add_argument("path", help="venue JSON or serve snapshot file")
    p.add_argument("--venue", required=True,
                   help="venue id to swap on the target server")
    p.add_argument("--server", default="http://127.0.0.1:8080",
                   help="base URL of the running repro serve instance")
    p.add_argument("--snapshot", default=None,
                   help="where to write the baked snapshot when PATH is "
                        "a venue file (default: a temporary file)")
    p.add_argument("--warm-matrix", action="store_true",
                   help="prebuild the KoE* door matrix before snapshotting")
    p.add_argument("--no-wait", dest="wait", action="store_false",
                   help="return as soon as the server accepts the ingest "
                        "instead of waiting for the swap to finish")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "delta", help="apply dynamic edits (door closures, partition "
                      "seals, schedules, keyword rewrites) to a venue "
                      "of a running server — no re-ingest")
    p.add_argument("--venue", required=True,
                   help="venue id on the target server")
    p.add_argument("--server", default="http://127.0.0.1:8080",
                   help="base URL of the running repro serve instance")
    p.add_argument("--close-door", type=int, action="append", metavar="DID",
                   help="close a door (repeatable)")
    p.add_argument("--open-door", type=int, action="append", metavar="DID",
                   help="re-open a closed door (repeatable)")
    p.add_argument("--seal-partition", type=int, action="append",
                   metavar="PID", help="seal a partition (repeatable)")
    p.add_argument("--unseal-partition", type=int, action="append",
                   metavar="PID", help="unseal a partition (repeatable)")
    p.add_argument("--set-iword", type=_parse_iword_spec, action="append",
                   metavar="PID=IWORD",
                   help="relabel a partition's i-word (repeatable)")
    p.add_argument("--clear-iword", type=int, action="append", metavar="PID",
                   help="remove a partition's i-word (repeatable)")
    p.add_argument("--ops", default=None, metavar="JSON",
                   help="raw JSON list of delta ops (covers schedules and "
                        "t-word edits; see docs/dynamic.md)")
    p.set_defaults(func=_cmd_delta)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

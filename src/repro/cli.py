"""`python -m repro` — query a serialized venue from the shell.

Workflow::

    # export a venue (e.g. from a generator or your own builder)
    python -m repro export-fig1 venue.json

    # inspect it
    python -m repro info venue.json

    # ask for routes
    python -m repro query venue.json \
        --from 7.4,39.5,0 --to 23.3,31.4,0 \
        --delta 60 --keywords latte,apple --k 3 --algorithm ToE

    # draw a floor with the best route
    python -m repro render venue.json --floor 0 --out floor.svg \
        --from 7.4,39.5,0 --to 23.3,31.4,0 --delta 60 --keywords latte
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.core.directions import render_directions
from repro.datasets import paper_fig1
from repro.geometry import Point
from repro.space import load_space, save_space
from repro.viz import RouteStyle, render_svg, save_svg


def _parse_point(text: str) -> Point:
    parts = [float(v) for v in text.split(",")]
    if len(parts) == 2:
        parts.append(0.0)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"point must be 'x,y' or 'x,y,level', got {text!r}")
    return Point(parts[0], parts[1], parts[2])


def _cmd_export_fig1(args) -> int:
    fixture = paper_fig1()
    save_space(args.path, fixture.space, fixture.kindex)
    print(f"wrote {fixture.space} to {args.path}")
    return 0


def _cmd_info(args) -> int:
    space, kindex = load_space(args.path)
    print(space)
    if kindex is not None:
        stats = kindex.stats()
        print(f"keywords: {int(stats['num_iwords'])} i-words, "
              f"{int(stats['num_twords'])} t-words, "
              f"{int(stats['num_labelled_partitions'])} labelled partitions")
    by_kind = {}
    for p in space.partitions.values():
        by_kind[p.kind.value] = by_kind.get(p.kind.value, 0) + 1
    print("partitions by kind:",
          ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())))
    return 0


def _load_engine(path):
    space, kindex = load_space(path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    return space, kindex, IKRQEngine(space, kindex)


def _cmd_query(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    query = IKRQ(ps=args.from_point, pt=args.to_point, delta=args.delta,
                 keywords=tuple(args.keywords.split(",")), k=args.k,
                 alpha=args.alpha, tau=args.tau)
    if args.workers > 0:
        service = QueryService(engine, workers=args.workers)
        answer = service.search_batch(
            [query], algorithm=args.algorithm, workers=args.workers)[0]
    else:
        answer = engine.search(query, algorithm=args.algorithm)
    if not answer.routes:
        print("no feasible route")
        return 1
    for rank, result in enumerate(answer.routes, start=1):
        print(f"#{rank}: ψ={result.score:.4f} ρ={result.relevance:.3f} "
              f"δ={result.distance:.1f} m")
        if args.directions:
            ctx = engine.context(answer.query)
            print(render_directions(ctx, result.route))
        else:
            print("   " + result.route.describe(space))
    return 0


def _cmd_render(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    routes = []
    styles = []
    markers = []
    if args.from_point and args.to_point and args.keywords:
        answer = engine.query(
            ps=args.from_point, pt=args.to_point, delta=args.delta,
            keywords=args.keywords.split(","), k=args.k,
            algorithm=args.algorithm)
        for i, result in enumerate(answer.routes):
            routes.append(result.route)
            styles.append(RouteStyle(
                color=["#d62728", "#1f77b4", "#2ca02c"][i % 3],
                label=f"#{i + 1} ψ={result.score:.3f}"))
        markers = [("ps", args.from_point), ("pt", args.to_point)]
    svg = render_svg(space, floor=args.floor, kindex=kindex,
                     routes=routes, route_styles=styles, markers=markers)
    save_svg(args.out, svg)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Query and render serialized indoor venues.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export-fig1", help="write the Fig. 1 venue")
    p.add_argument("path")
    p.set_defaults(func=_cmd_export_fig1)

    p = sub.add_parser("info", help="summarise a venue file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_info)

    def add_query_args(p, require_query: bool):
        p.add_argument("path")
        p.add_argument("--from", dest="from_point", type=_parse_point,
                       required=require_query, help="start point x,y[,level]")
        p.add_argument("--to", dest="to_point", type=_parse_point,
                       required=require_query, help="terminal point")
        p.add_argument("--delta", type=float, default=100.0,
                       help="distance constraint (m)")
        p.add_argument("--keywords", default="" if not require_query else None,
                       required=require_query,
                       help="comma-separated query keywords")
        p.add_argument("--k", type=int, default=3)
        p.add_argument("--alpha", type=float, default=0.5)
        p.add_argument("--tau", type=float, default=0.2)
        p.add_argument("--algorithm", default="ToE")

    p = sub.add_parser("query", help="run an IKRQ")
    add_query_args(p, require_query=True)
    p.add_argument("--directions", action="store_true",
                   help="print step-by-step directions")
    p.add_argument("--workers", type=int, default=0,
                   help="evaluate through the batched QueryService layer "
                        "(single queries run inline on its caches; "
                        "0 = direct engine call)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("render", help="draw a floor (optionally + routes)")
    add_query_args(p, require_query=False)
    p.add_argument("--floor", type=int, default=0)
    p.add_argument("--out", default="floor.svg")
    p.set_defaults(func=_cmd_render)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Fig. 11 — running time vs. floor count (3, 5, 7, 9).

Paper shape: ToE grows slowly with floors; KoE deteriorates much
faster (short stairways keep distant floors inside the constraint, so
its candidate set balloons).
"""

import pytest

from repro.bench import experiments as E
from benchmarks.conftest import BENCH_SCALE, make_workload, run_workload


@pytest.mark.parametrize("floors", (3, 5, 7))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE"))
def test_fig11_time_vs_floors(benchmark, algorithm, floors):
    env = E.synthetic_env(floors=floors, scale=BENCH_SCALE, seed=42)
    workload = make_workload(env)
    benchmark.group = f"fig11-floors={floors}"
    benchmark.pedantic(
        run_workload, args=(env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

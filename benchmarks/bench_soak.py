#!/usr/bin/env python
"""Shell entry point for the open-loop soak harness.

Fixes a deterministic arrival schedule (Poisson or Markov-modulated
bursty, zipfian tenant mix, ToE/KoE/KoE* query shapes) and fires it at
the live HTTP fleet regardless of whether the fleet keeps up, so every
latency is charged from the *intended* send time (no coordinated
omission).  Runs a stepped SLO-gated saturation search plus a
venue-wide ``POST /delta`` closure surge with overlay byte-identity,
and appends one reproducible ``{"mode": "soak"}`` entry to
``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_soak.py --tenants 3 --floors 50
    PYTHONPATH=src python benchmarks/bench_soak.py --smoke

The harness lives in :mod:`repro.bench.soak` (also reachable as
``python -m repro.bench soak``) so the CLI, the CI soak-smoke job and
this script share one implementation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.soak import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

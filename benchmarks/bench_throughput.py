#!/usr/bin/env python
"""Shell entry point for the throughput benches.

Measures queries/second of bare ``engine.search`` calls against
``QueryService.search_batch`` on the same traffic stream — or, with
``--serve``, of the threaded service against the sharded multi-process
pool — verifying that every mode returns identical results.  Runs
append to the ``BENCH_throughput.json`` trajectory artifact at the
repo root (``--artifact ''`` disables)::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --venue synthetic --pool 16 --repeat 5 --workers 4
    PYTHONPATH=src python benchmarks/bench_throughput.py --serve --workers 2

The measurement logic lives in :mod:`repro.bench.throughput` (also
reachable as ``python -m repro.bench throughput``) so the CLI, the CI
smoke run and this script share one implementation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.throughput import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

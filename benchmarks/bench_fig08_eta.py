"""Fig. 8 — running time vs. η (distance-constraint looseness).

Paper shape: ToE (and ToE\\B) slow down steadily as η grows; ToE\\D is
insensitive to η; the KoE family barely moves.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("eta", (1.6, 2.0))
@pytest.mark.parametrize("algorithm", ("ToE", "ToE-D", "KoE"))
def test_fig08_time_vs_eta(benchmark, synth_env, algorithm, eta):
    workload = make_workload(synth_env, eta=eta)
    benchmark.group = f"fig08-eta={eta}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

"""Fig. 10 — running time vs. the i-word fraction β.

Paper shape: both ToE and KoE speed up as β grows (i-words map to
fewer candidate partitions than t-words); the gap between them widens
towards small β.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("beta", (0.2, 0.6, 1.0))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE"))
def test_fig10_time_vs_beta(benchmark, synth_env, algorithm, beta):
    workload = make_workload(synth_env, beta=beta)
    benchmark.group = f"fig10-beta={beta}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

"""Shared environments and helpers for the pytest-benchmark suite.

Each ``bench_figXX`` module regenerates one figure of the paper's
evaluation (Section V).  pytest-benchmark measures a representative
query workload per (figure, algorithm, x-value) cell at ``BENCH_SCALE``
— a venue shrunk for pure-Python CI runs.  The full parameter sweeps
at paper scale are produced by ``python -m repro.bench`` (see
EXPERIMENTS.md), which uses the same experiment functions.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments as E

#: Venue shrink factor for CI benches (see EXPERIMENTS.md for the
#: paper-scale runs).
BENCH_SCALE = 0.12
#: Query instances folded into one measured call.
BENCH_INSTANCES = 2


@pytest.fixture(scope="session")
def synth_env():
    """The default synthetic venue (five floors, scaled)."""
    return E.synthetic_env(floors=5, scale=BENCH_SCALE, seed=42)


@pytest.fixture(scope="session")
def synth_env_2f():
    return E.synthetic_env(floors=2, scale=BENCH_SCALE, seed=42)


@pytest.fixture(scope="session")
def real_mall_env():
    """The Hangzhou-mall analogue (seven floors, scaled)."""
    return E.real_env(scale=BENCH_SCALE, seed=23)


def make_workload(env, **kwargs):
    """A deterministic workload with the paper's Table IV defaults."""
    defaults = dict(s2t=1700.0 * env.s2t_unit, eta=1.8, qw_size=4,
                    beta=0.6, k=7, alpha=0.5, tau=0.2,
                    instances=BENCH_INSTANCES)
    defaults.update(kwargs)
    if "s2t" in kwargs:
        defaults["s2t"] = kwargs["s2t"] * env.s2t_unit
    return env.qgen.workload(**defaults)


def run_workload(env, workload, algorithm, max_expansions=None):
    """Evaluate every query of a workload once (the measured unit)."""
    total_routes = 0
    for query in workload:
        answer = env.engine.search(query, algorithm,
                                   max_expansions=max_expansions)
        total_routes += len(answer.routes)
    return total_routes

"""Fig. 18 — real data: memory vs. |QW| (α = 0.7).

Paper shape: memory rises moderately with |QW|; KoE is always the most
space-efficient algorithm.
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("qw", (2, 4))
def test_fig18_real_memory_vs_qw(benchmark, real_mall_env, qw):
    workload = make_workload(real_mall_env, qw_size=qw, alpha=0.7)

    def run():
        peaks = {}
        for algorithm in ("ToE", "KoE"):
            peak = 0.0
            for query in workload:
                answer = real_mall_env.engine.search(query, algorithm)
                peak = max(peak, answer.stats.estimated_peak_mb())
            peaks[algorithm] = peak
        return peaks

    benchmark.group = f"fig18-qw={qw}"
    peaks = benchmark.pedantic(run, rounds=2, iterations=1)
    assert peaks["KoE"] <= peaks["ToE"] * 1.5

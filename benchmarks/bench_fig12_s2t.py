"""Fig. 12 — running time vs. the start-terminal distance δs2t (η = 1.6).

Paper shape: ToE slows as the endpoints separate (more partitions to
expand); KoE is less affected.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("s2t", (1100.0, 1500.0, 1900.0))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE"))
def test_fig12_time_vs_s2t(benchmark, synth_env, algorithm, s2t):
    workload = make_workload(synth_env, s2t=s2t, eta=1.6)
    benchmark.group = f"fig12-s2t={int(s2t)}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

"""Fig. 5 — running time vs. k (1..11).

Paper shape: time grows only slightly with k for every algorithm;
\\D variants are clearly slower than the fully-pruned versions.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("k", (1, 7, 11))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE", "ToE-D", "KoE-D"))
def test_fig05_time_vs_k(benchmark, synth_env, algorithm, k):
    workload = make_workload(synth_env, k=k)
    benchmark.group = f"fig05-k={k}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

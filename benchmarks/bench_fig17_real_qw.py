"""Fig. 17 — real data: running time vs. |QW| (α = 0.7).

Paper shape: \\D variants worsen rapidly; KoE worsens faster than ToE
as |QW| grows (category-clustered floors give dense candidate sets);
both fully-pruned algorithms stay responsive.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("qw", (1, 3, 5))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE", "ToE-D"))
def test_fig17_real_time_vs_qw(benchmark, real_mall_env, algorithm, qw):
    workload = make_workload(real_mall_env, qw_size=qw, alpha=0.7)
    benchmark.group = f"fig17-qw={qw}"
    benchmark.pedantic(
        run_workload, args=(real_mall_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

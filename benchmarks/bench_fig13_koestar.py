"""Fig. 13 — KoE vs. KoE* running time across η.

Paper shape: KoE wins except at the tightest constraint (η ≈ 1.2),
where precomputed shortest routes occasionally pay off; at looser
constraints KoE*'s recomputation penalty dominates.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("eta", (1.2, 1.6, 2.0))
@pytest.mark.parametrize("algorithm", ("KoE", "KoE*"))
def test_fig13_koestar_time(benchmark, synth_env, algorithm, eta):
    workload = make_workload(synth_env, eta=eta)
    if algorithm == "KoE*":
        synth_env.engine.door_matrix()  # build cost excluded, as Fig. 13
    benchmark.group = f"fig13-eta={eta}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

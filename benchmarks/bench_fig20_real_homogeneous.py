"""Fig. 20 — real data: ToE\\P homogeneous rate vs. |QW| (α = 0.7).

Paper shape: without prime routes ToE\\P persistently returns
homogeneous routes across every query size.
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("qw", (1, 4))
def test_fig20_real_homogeneous_rate(benchmark, real_mall_env, qw):
    workload = make_workload(real_mall_env, qw_size=qw, alpha=0.7,
                             instances=2)

    def run():
        rates = []
        for query in workload:
            answer = real_mall_env.engine.search(
                query, "ToE-P", max_expansions=8_000)
            kps = [r.kp for r in answer.routes]
            if kps:
                rates.append(sum(1 for kp in kps if kps.count(kp) > 1)
                             / len(kps))
        return sum(rates) / len(rates) if rates else 0.0

    benchmark.group = f"fig20-qw={qw}"
    rate = benchmark.pedantic(run, rounds=2, iterations=1)
    assert 0.0 <= rate <= 1.0

"""Ablation: the connect-step heuristics of Algorithm 5.

DESIGN.md §5 calls out two heuristic switches in ``connect`` that the
paper fixes implicitly:

* ``expand_through_terminal`` — keep expanding stamps that reached the
  terminal partition (required to reproduce Table II / Example 8),
* ``expand_after_coverage`` — keep expanding fully-covered stamps
  (off in the paper; on = exhaustive search equal to the baseline).

This bench quantifies their cost so the defaults are justified by
data, not taste.
"""

import pytest

from repro.core import SearchConfig
from benchmarks.conftest import make_workload

CONFIGS = {
    "paper-defaults": SearchConfig(),
    "no-through-terminal": SearchConfig(expand_through_terminal=False),
    "exhaustive-coverage": SearchConfig(expand_after_coverage=True),
}


@pytest.mark.parametrize("variant", sorted(CONFIGS))
def test_ablation_connect_heuristics(benchmark, synth_env, variant):
    workload = make_workload(synth_env, instances=2)
    config = CONFIGS[variant]

    def run():
        total = 0
        for query in workload:
            answer = synth_env.engine.search(query, "ToE", config=config)
            total += len(answer.routes)
        return total

    benchmark.group = "ablation-connect"
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("gamma", (0.0, 1.0))
def test_ablation_popularity_overhead(benchmark, synth_env, gamma):
    """The γ-weighted popularity extension costs almost nothing."""
    from repro.core import IKRQ
    base = make_workload(synth_env, instances=2)
    queries = [IKRQ(ps=q.ps, pt=q.pt, delta=q.delta, keywords=q.keywords,
                    k=q.k, alpha=q.alpha, tau=q.tau, gamma=gamma)
               for q in base]

    def run():
        total = 0
        for query in queries:
            total += len(synth_env.engine.search(query, "ToE").routes)
        return total

    benchmark.group = "ablation-popularity"
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("slack", (0.0, 0.3))
def test_ablation_soft_constraint_overhead(benchmark, synth_env, slack):
    """Soft-slack searches pay proportionally to the enlarged ball."""
    from repro.core import IKRQ
    base = make_workload(synth_env, instances=2)
    queries = [IKRQ(ps=q.ps, pt=q.pt, delta=q.delta, keywords=q.keywords,
                    k=q.k, alpha=q.alpha, tau=q.tau, soft_slack=slack)
               for q in base]

    def run():
        total = 0
        for query in queries:
            total += len(synth_env.engine.search(query, "ToE").routes)
        return total

    benchmark.group = "ablation-soft"
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

"""Fig. 15 — ToE vs. ToE\\P running time across η.

Paper shape: without prime-route pruning the candidate set explodes
(near-)exponentially with η — ToE\\P ends up orders of magnitude
slower while ToE stays stable.  The ablation runs under an expansion
cap so the bench stays finite; the cap is generous enough that the
blow-up is still visible in the measured times.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload

CAP = 10_000


@pytest.mark.parametrize("eta", (1.4, 1.8))
@pytest.mark.parametrize("algorithm", ("ToE", "ToE-P"))
def test_fig15_toep_time(benchmark, synth_env_2f, algorithm, eta):
    workload = make_workload(synth_env_2f, eta=eta, instances=1)
    benchmark.group = f"fig15-eta={eta}"
    benchmark.pedantic(
        run_workload, args=(synth_env_2f, workload, algorithm),
        kwargs={"max_expansions": CAP if algorithm == "ToE-P" else None},
        rounds=2, iterations=1)

#!/usr/bin/env python
"""Shell entry point for the memory-tiering bench.

Loads as many tenant engines as fit into a fixed resident-memory
budget, first the classic way (every index buffer copied onto the
heap), then with the memory tiers on (``mmap``-shared snapshot payload,
a small resident door-matrix budget, disk-spilled cold rows), verifies
byte-identity of every tiered answer, times spilled-row faults, and
appends a tenants-per-budget entry to the ``BENCH_throughput.json``
trajectory::

    PYTHONPATH=src python benchmarks/bench_memory.py --floors 2
    PYTHONPATH=src python benchmarks/bench_memory.py --smoke

The measurement logic lives in :mod:`repro.bench.memory` (also
reachable as ``python -m repro.bench memory``) so the CLI, the CI
perf-smoke job and this script share one implementation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.memory import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Shell entry point for the array-native scale bench.

Generates deterministic multi-floor synthetic malls, replays one
paper-methodology query stream through the production array-native
core, the retained dict-of-dict reference core and a binary-v2
cold-started engine, verifies all three answer identically, and
appends per-size qps, speedup, latency percentiles and snapshot
cold-start times to the ``BENCH_throughput.json`` trajectory::

    PYTHONPATH=src python benchmarks/bench_scale.py --floors 10
    PYTHONPATH=src python benchmarks/bench_scale.py --floors 2,6,10
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke

The measurement logic lives in :mod:`repro.bench.scale` (also
reachable as ``python -m repro.bench scale``) so the CLI, the CI
perf-smoke job and this script share one implementation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.scale import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

"""Fig. 19 — real data: running time vs. η (α = 0.7).

Paper shape: the ToE family accesses more doors as η loosens and slows
accordingly; KoE gradually approaches KoE\\D.
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("eta", (1.2, 1.8, 2.2))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE"))
def test_fig19_real_time_vs_eta(benchmark, real_mall_env, algorithm, eta):
    workload = make_workload(real_mall_env, eta=eta, alpha=0.7)
    benchmark.group = f"fig19-eta={eta}"
    benchmark.pedantic(
        run_workload, args=(real_mall_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

"""Fig. 7 — memory vs. |QW|.

Paper shape: memory grows with |QW|; the KoE family is the most
space-efficient (no cached one-hop intermediates).

Memory is not a timing quantity, so this bench measures the workload
run while *asserting* the paper's qualitative memory ordering from the
search statistics (the proxy the harness reports).
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("qw", (2, 4))
def test_fig07_memory_vs_qw(benchmark, synth_env, qw):
    workload = make_workload(synth_env, qw_size=qw)

    def run():
        mems = {}
        for algorithm in ("ToE", "KoE"):
            peak = 0.0
            for query in workload:
                answer = synth_env.engine.search(query, algorithm)
                peak = max(peak, answer.stats.estimated_peak_mb())
            mems[algorithm] = peak
        return mems

    benchmark.group = f"fig07-qw={qw}"
    mems = benchmark.pedantic(run, rounds=2, iterations=1)
    # The paper's Fig. 7: KoE uses the least memory.
    assert mems["KoE"] <= mems["ToE"] * 1.5

"""Fig. 4 — running time of all seven algorithms at default settings.

Paper shape: ToE/KoE fastest; \\D variants clearly slower; \\B ≈ the
originals; KoE* slowest (its precomputation does not pay off).
ToE\\P is omitted as in the paper (it is measured in Fig. 15).
"""

import pytest

from benchmarks.conftest import make_workload, run_workload

ALGORITHMS = ("ToE", "ToE-D", "ToE-B", "KoE", "KoE-D", "KoE-B", "KoE*")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig04_default_settings(benchmark, synth_env, algorithm):
    workload = make_workload(synth_env)
    if algorithm == "KoE*":
        synth_env.engine.door_matrix()  # precomputation outside timing
    benchmark.group = "fig04-default"
    result = benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result >= 0

"""Fig. 9 — memory vs. η.

Paper shape: ToE-family memory grows with η; KoE-family memory stays
stable (insensitive to the distance constraint).
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("eta", (1.6, 2.0))
def test_fig09_memory_vs_eta(benchmark, synth_env, eta):
    workload = make_workload(synth_env, eta=eta)

    def run():
        peaks = {}
        for algorithm in ("ToE", "KoE"):
            peak = 0.0
            for query in workload:
                answer = synth_env.engine.search(query, algorithm)
                peak = max(peak, answer.stats.estimated_peak_mb())
            peaks[algorithm] = peak
        return peaks

    benchmark.group = f"fig09-eta={eta}"
    peaks = benchmark.pedantic(run, rounds=2, iterations=1)
    assert peaks["KoE"] <= peaks["ToE"] * 1.5

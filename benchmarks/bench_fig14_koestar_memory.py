"""Fig. 14 — KoE vs. KoE* memory across η.

Paper shape: KoE*'s memory is an order of magnitude above KoE's (it
holds the all-pairs door route matrix).
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("eta", (1.2, 2.0))
def test_fig14_koestar_memory(benchmark, synth_env, eta):
    workload = make_workload(synth_env, eta=eta)
    synth_env.engine.door_matrix()

    def run():
        peaks = {}
        for algorithm in ("KoE", "KoE*"):
            peak = 0.0
            for query in workload:
                answer = synth_env.engine.search(query, algorithm)
                peak = max(peak, answer.stats.estimated_peak_mb())
            peaks[algorithm] = peak
        return peaks

    benchmark.group = f"fig14-eta={eta}"
    peaks = benchmark.pedantic(run, rounds=2, iterations=1)
    # The defining shape: the matrix dwarfs KoE's live state.
    assert peaks["KoE*"] > 5.0 * peaks["KoE"]

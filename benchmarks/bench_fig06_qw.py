"""Fig. 6 — running time vs. |QW| (1..5).

Paper shape: all algorithms slow down as |QW| grows; KoE degrades
faster than ToE (more candidate partitions to combine).
"""

import pytest

from benchmarks.conftest import make_workload, run_workload


@pytest.mark.parametrize("qw", (1, 3, 5))
@pytest.mark.parametrize("algorithm", ("ToE", "KoE"))
def test_fig06_time_vs_qw(benchmark, synth_env, algorithm, qw):
    workload = make_workload(synth_env, qw_size=qw)
    benchmark.group = f"fig06-qw={qw}"
    benchmark.pedantic(
        run_workload, args=(synth_env, workload, algorithm),
        rounds=3, iterations=1, warmup_rounds=1)

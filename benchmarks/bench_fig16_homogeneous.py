"""Fig. 16 — ToE\\P homogeneous rate vs. k.

Paper shape: the fraction of homogeneous routes in ToE\\P's top-k
grows rapidly with k (>60% at k ≥ 3, 92% at k = 15) — without prime
pruning the result list fills with variants of the same key-partition
sequence.
"""

import pytest

from benchmarks.conftest import make_workload


@pytest.mark.parametrize("k", (3, 15))
def test_fig16_homogeneous_rate(benchmark, synth_env_2f, k):
    workload = make_workload(synth_env_2f, k=k, instances=2)

    def run():
        rates = []
        for query in workload:
            answer = synth_env_2f.engine.search(
                query, "ToE-P", max_expansions=8_000)
            kps = [r.kp for r in answer.routes]
            if kps:
                rates.append(sum(1 for kp in kps if kps.count(kp) > 1)
                             / len(kps))
        return sum(rates) / len(rates) if rates else 0.0

    benchmark.group = f"fig16-k={k}"
    rate = benchmark.pedantic(run, rounds=2, iterations=1)
    assert 0.0 <= rate <= 1.0

#!/usr/bin/env python
"""Shell entry point for the multi-venue tenancy bench.

Hosts several deterministic synthetic malls in one multi-venue shard
pool, hammers all of them concurrently from per-tenant client threads,
hot-swaps one venue onto a freshly rebuilt snapshot generation
mid-stream (broadcast load, atomic flip, drain barrier, evict), and
appends qps / shed-rate / swap-latency entries — identity-verified
before, during and after the swap — to the ``BENCH_throughput.json``
trajectory::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --venues 4 --shards 4
    PYTHONPATH=src python benchmarks/bench_tenancy.py --smoke

The measurement logic lives in :mod:`repro.bench.tenancy` (also
reachable as ``python -m repro.bench tenancy``) so the CLI, the CI
perf-smoke job and this script share one implementation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.tenancy import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Markdown link checker for the docs tree (the CI docs job).

Scans ``README.md`` and every ``docs/*.md`` file for inline markdown
links and images, and fails on:

* a relative link whose target file does not exist,
* a fragment (``#anchor``) that matches no heading slug in the target
  file (GitHub-style slugs: lowercased, punctuation stripped, spaces
  to hyphens).

External links (``http(s)://``, ``mailto:``) are not fetched — CI must
not depend on the network — but a bare-looking scheme-less absolute
path is still an error.  Run it locally::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) — code spans are stripped first.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")


def _slug(heading: str) -> str:
    """GitHub's anchor slug of a heading line."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" ", "-", text)


def _headings(path: Path) -> Set[str]:
    slugs: Dict[str, int] = {}
    out: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(1))
        seen = slugs.get(slug, 0)
        slugs[slug] = seen + 1
        out.add(slug if seen == 0 else f"{slug}-{seen}")
    return out


def _links(path: Path) -> List[str]:
    targets: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _CODE_SPAN.sub("", line)
        targets.extend(match.group(1) for match in _LINK.finditer(stripped))
    return targets


def check() -> List[str]:
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    errors: List[str] = []
    for source in files:
        if not source.exists():
            errors.append(f"{source.relative_to(ROOT)}: file missing")
            continue
        for target in _links(source):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw_path, _, fragment = target.partition("#")
            dest = (source.parent / raw_path).resolve() if raw_path \
                else source
            rel = source.relative_to(ROOT)
            if raw_path and not dest.exists():
                errors.append(f"{rel}: dangling link -> {target}")
                continue
            if fragment:
                if dest.suffix.lower() != ".md":
                    continue
                if fragment not in _headings(dest):
                    errors.append(
                        f"{rel}: no heading for anchor -> {target}")
    return errors


def main() -> int:
    errors = check()
    if errors:
        print(f"docs link check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  {error}")
        return 1
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    links = sum(len(_links(f)) for f in files if f.exists())
    print(f"docs link check ok: {len(files)} file(s), {links} link(s), "
          f"no dangling references")
    return 0


if __name__ == "__main__":
    sys.exit(main())

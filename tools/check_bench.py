#!/usr/bin/env python
"""Schema validator for ``BENCH_throughput.json`` trajectories.

Every bench harness appends one entry per run; a malformed append
(missing verdict keys, wrong envelope, clock skew) would silently
corrupt the perf history that later sessions diff against.  This
checker fails fast instead.  It validates:

* the envelope — ``{"format": "repro-bench-trajectory", "version": 1,
  "entries": [...]}``,
* every entry's ``mode`` is known and carries that mode's required
  keys (the per-kind contract below),
* ``recorded_unix`` is present, numeric, plausibly a real timestamp,
  and monotonically non-decreasing across the file (appends only —
  a reordered or hand-edited history is an error),
* soak entries additionally carry reproducible phase configs (seed +
  process + a ``schedule_sha256`` fingerprint per phase).

Run it locally or in CI (exit 0 clean, 1 with findings)::

    python tools/check_bench.py                      # repo trajectory
    python tools/check_bench.py /tmp/some_traj.json  # explicit paths
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

ROOT = Path(__file__).resolve().parent.parent

ENVELOPE_FORMAT = "repro-bench-trajectory"
ENVELOPE_VERSION = 1

#: Required top-level keys per bench kind.  Deliberately the *stable
#: contract* subset, not every key a mode happens to emit today.
REQUIRED_KEYS: Dict[str, Tuple[str, ...]] = {
    "batched": ("venue", "algorithm", "queries", "workers",
                "sequential_qps", "batched_qps", "speedup",
                "verified_identical"),
    "serve": ("venue", "algorithm", "queries", "workers",
              "threaded_qps", "sharded_qps", "speedup",
              "verified_identical"),
    "scale": ("venue", "algorithm", "floors", "partitions", "doors",
              "array_qps", "dict_qps", "latency_ms", "cold_start",
              "verified_identical"),
    "tenancy": ("venues", "shards", "queries", "qps", "shed_rate",
                "swap", "latency_ms", "verified_identical"),
    "memory": ("budget_bytes", "tenants_eager", "tenants_tiered",
               "tenant_ratio", "spill", "verified_identical"),
    "chaos": ("venues", "shards", "kills_planned", "kills_fired",
              "failovers", "statuses", "latency_ms", "shed_rate",
              "zero_non_shed_failures", "recovered", "p99_bounded",
              "verified_identical"),
    "soak": ("config", "slo", "phases", "saturation_qps",
             "slo_gates_met", "zero_non_shed_failures",
             "surge_recovered", "surge_overlay_identical",
             "verified_identical"),
}

#: Keys every phase record of a soak entry must carry for the run to
#: be reproducible and judgeable from the trajectory alone.
SOAK_PHASE_KEYS = ("phase", "config", "schedule_sha256", "offered_qps",
                   "achieved_qps", "shed_rate", "failed",
                   "latency_from_intended_ms", "spot_checks")

#: ``recorded_unix`` sanity range: 2020..2100.
_TS_MIN, _TS_MAX = 1_577_836_800, 4_102_444_800


def _check_soak(entry: Dict, where: str, problems: List[str]) -> None:
    phases = entry.get("phases")
    if not isinstance(phases, list) or not phases:
        problems.append(f"{where}: soak entry has no phases")
        return
    surge = entry.get("surge")
    for phase in phases + ([surge] if isinstance(surge, dict) else []):
        name = phase.get("phase", "?")
        missing = [key for key in SOAK_PHASE_KEYS if key not in phase]
        if missing:
            problems.append(f"{where} phase {name!r}: missing keys "
                            f"{missing}")
            continue
        config = phase["config"]
        if not isinstance(config, dict) or "seed" not in config \
                or "process" not in config:
            problems.append(f"{where} phase {name!r}: config is not "
                            f"reproducible (needs seed + process)")
        digest = phase["schedule_sha256"]
        if not (isinstance(digest, str) and len(digest) == 64):
            problems.append(f"{where} phase {name!r}: schedule_sha256 "
                            f"is not a sha256 hex digest")


def check_trajectory(path: Path) -> List[str]:
    """All schema problems of one trajectory file (empty = clean)."""
    problems: List[str] = []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable trajectory: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: envelope must be a JSON object"]
    if doc.get("format") != ENVELOPE_FORMAT:
        problems.append(f"{path}: format is {doc.get('format')!r}, "
                        f"expected {ENVELOPE_FORMAT!r}")
    if doc.get("version") != ENVELOPE_VERSION:
        problems.append(f"{path}: version is {doc.get('version')!r}, "
                        f"expected {ENVELOPE_VERSION}")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        problems.append(f"{path}: entries must be a list")
        return problems
    last_ts = None
    for i, entry in enumerate(entries):
        where = f"{path} entry[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        mode = entry.get("mode")
        if mode not in REQUIRED_KEYS:
            problems.append(f"{where}: unknown mode {mode!r} (known: "
                            f"{sorted(REQUIRED_KEYS)})")
            continue
        missing = [key for key in REQUIRED_KEYS[mode]
                   if key not in entry]
        if missing:
            problems.append(f"{where} (mode={mode}): missing required "
                            f"keys {missing}")
        ts = entry.get("recorded_unix")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"{where}: recorded_unix must be numeric, "
                            f"got {ts!r}")
        elif not (_TS_MIN <= ts <= _TS_MAX):
            problems.append(f"{where}: recorded_unix {ts} is not a "
                            f"plausible timestamp")
        else:
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"{where}: recorded_unix {ts} precedes the "
                    f"previous entry's {last_ts} — trajectory files "
                    f"are append-only")
            last_ts = ts
        if mode == "soak" and not missing:
            _check_soak(entry, where, problems)
    return problems


def main(argv: Sequence[str] = ()) -> int:
    paths = ([Path(arg) for arg in argv] if argv
             else [ROOT / "BENCH_throughput.json"])
    problems: List[str] = []
    checked = 0
    for path in paths:
        problems.extend(check_trajectory(path))
        checked += 1
    if problems:
        print(f"check_bench: {len(problems)} problem(s) in {checked} "
              f"trajectory file(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    total = sum(
        len(json.loads(p.read_text(encoding="utf-8")).get("entries", []))
        for p in paths)
    print(f"check_bench: {total} entries across {checked} trajectory "
          f"file(s), all well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

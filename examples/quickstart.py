"""Quickstart: run IKRQ queries on the paper's Fig. 1 floor plan.

Usage::

    python examples/quickstart.py

Builds the running-example venue (shops zara/oppo/costa/starbucks/
apple/samsung around two hallways), then asks for the top-3 routes
from the start point inside ``zara`` to a point in the upper hallway
that cover a ``latte`` and an ``apple`` stop on the way.
"""

from repro.core import IKRQEngine
from repro.datasets import paper_fig1


def main() -> None:
    fixture = paper_fig1()
    space, kindex = fixture.space, fixture.kindex
    print(f"Venue: {space}")
    print(f"Keywords: {kindex}")

    engine = IKRQEngine(space, kindex)

    print("\nIKRQ(ps, pt, Δ=60 m, QW=[latte, apple], k=3), α=0.5:")
    answer = engine.query(
        ps=fixture.ps,
        pt=fixture.pt,
        delta=60.0,
        keywords=["latte", "apple"],
        k=3,
        alpha=0.5,
        algorithm="ToE",
    )
    for rank, result in enumerate(answer.routes, start=1):
        route = result.route
        print(f"  #{rank}: ψ={result.score:.4f}  ρ={result.relevance:.3f}  "
              f"δ={result.distance:.1f} m")
        print(f"       {route.describe(space)}")
        print(f"       route words: {sorted(route.words)}")

    print(f"\nSearch statistics: {answer.stats.stamps_popped} stamps "
          f"expanded, {answer.stats.complete_routes} complete routes "
          f"seen, {answer.stats.total_pruned} prunings")

    # The same query through the keyword-oriented expansion.
    koe = engine.query(fixture.ps, fixture.pt, delta=60.0,
                       keywords=["latte", "apple"], k=3, algorithm="KoE")
    print(f"\nKoE finds the same best route: "
          f"{koe.routes[0].route.describe(space)}")

    # Step-by-step directions for the winner.
    from repro.core import render_directions
    ctx = engine.context(answer.query)
    print("\nDirections for the best route:")
    print(render_directions(ctx, answer.routes[0].route))

    # Draw the floor with the top-2 routes overlaid.
    from repro.viz import RouteStyle, render_svg, save_svg
    svg = render_svg(
        space, kindex=kindex,
        routes=[r.route for r in answer.routes[:2]],
        route_styles=[RouteStyle("#d62728", label="#1"),
                      RouteStyle("#1f77b4", label="#2", dash="4 3")],
        markers=[("ps", fixture.ps), ("pt", fixture.pt)])
    out = save_svg("fig1_routes.svg", svg)
    print(f"\nFloor plan with routes written to {out}")


if __name__ == "__main__":
    main()

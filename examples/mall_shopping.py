"""Shopping-mall scenario on the paper's synthetic multi-floor venue.

A shopper enters a five-floor mall and wants to visit shops matching
several thematic interests before reaching a meeting point.  Shoppers
weight keyword coverage over walking distance, so α is large
(Section III-C).  The example also contrasts the ToE and KoE
algorithms and shows the effect of α on the returned routes.

Usage::

    python examples/mall_shopping.py [scale]

``scale`` (default 0.2) shrinks the venue; 1.0 is the paper-size mall
with 705 partitions.
"""

import sys
import time

from repro.core import IKRQEngine
from repro.datasets import (
    CorpusConfig,
    QueryGenerator,
    build_corpus,
    build_synthetic_space,
)
from repro.datasets.assign import assign_random


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2

    started = time.perf_counter()
    space, rooms = build_synthetic_space(floors=5, scale=scale)
    corpus = build_corpus(CorpusConfig().scaled(max(scale, 0.05)))
    all_rooms = [r for f in sorted(rooms) for r in rooms[f]]
    kindex = assign_random(all_rooms, corpus, seed=7)
    engine = IKRQEngine(space, kindex)
    print(f"Built {space} with {kindex} "
          f"in {time.perf_counter() - started:.2f}s")

    # Draw endpoints the way the paper does (Section V-A1), then pick
    # shopping interests the mall can actually satisfy along the way.
    qgen = QueryGenerator(space, kindex, graph=engine.graph, seed=2024)
    ps, pt, s2t = qgen.endpoints(1700.0 * (scale ** 0.5))
    delta = 1.8 * s2t
    # A shop within (Δ - δs2t)/2 of the start is always coverable:
    # detouring to it and back adds at most the slack.
    keywords = qgen.sample_keywords_near(ps, budget=(delta - s2t) / 2.0,
                                         size=3, beta=0.6)
    from repro.core import IKRQ
    query = IKRQ(ps=ps, pt=pt, delta=delta, keywords=keywords,
                 k=5, alpha=0.7)
    print(f"\nShopping query: keywords={list(query.keywords)}, "
          f"Δ={query.delta:.0f} m, k={query.k}, α={query.alpha}")

    for algorithm in ("ToE", "KoE"):
        t0 = time.perf_counter()
        answer = engine.search(query, algorithm)
        elapsed = (time.perf_counter() - t0) * 1000.0
        print(f"\n{algorithm}: {elapsed:.1f} ms, "
              f"{answer.stats.stamps_popped} expansions, "
              f"{len(answer.routes)} routes")
        for rank, result in enumerate(answer.routes[:3], start=1):
            print(f"  #{rank}: ψ={result.score:.4f} ρ={result.relevance:.2f} "
                  f"δ={result.distance:.0f} m "
                  f"({len(result.route.doors)} doors)")

    # The α trade-off: distance-sensitive vs. keyword-greedy shopper.
    print("\nEffect of α on the best route:")
    for alpha in (0.1, 0.5, 0.9):
        from repro.core import IKRQ
        q = IKRQ(ps=query.ps, pt=query.pt, delta=query.delta,
                 keywords=query.keywords, k=1, alpha=alpha)
        answer = engine.search(q, "ToE")
        if answer.best:
            print(f"  α={alpha}: ρ={answer.best.relevance:.2f}, "
                  f"δ={answer.best.distance:.0f} m")


if __name__ == "__main__":
    main()

"""Warehouse-robot scenario (the paper's automation motivation).

A picking robot starts at a charging dock, must end at the packing
station, and needs to pass bins holding the products of an order.
Products are t-words; bin labels are i-words.  Robots care about
travel cost, so α is small and k = 1 — the single best route is the
pick path.

Usage::

    python examples/warehouse_robot.py
"""

from repro.core import IKRQEngine
from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.space import IndoorSpaceBuilder, PartitionKind

#: Product catalogue: bin label -> stocked products.
CATALOGUE = {
    "bin-a1": ("usb-cable", "charger", "adapter"),
    "bin-a2": ("keyboard", "mouse", "webcam"),
    "bin-b1": ("notebook", "pens", "stapler"),
    "bin-b2": ("charger", "powerbank"),
    "bin-c1": ("headset", "webcam", "microphone"),
    "bin-c2": ("monitor", "hdmi-cable"),
}


def build_warehouse():
    """Three aisles of bins off a cross corridor."""
    b = IndoorSpaceBuilder()
    kindex = KeywordIndex()
    # Cross corridor (south side) and three aisles going north.
    b.add_partition("dockbay", Rect(0.0, 0.0, 15.0, 12.0))
    b.add_partition("corridor0", Rect(15.0, 0.0, 45.0, 12.0),
                    PartitionKind.HALLWAY)
    b.add_partition("corridor1", Rect(45.0, 0.0, 75.0, 12.0),
                    PartitionKind.HALLWAY)
    b.add_partition("corridor2", Rect(75.0, 0.0, 105.0, 12.0),
                    PartitionKind.HALLWAY)
    b.add_partition("packing", Rect(105.0, 0.0, 120.0, 12.0))
    b.add_door("dock-door", Point(15.0, 6.0), between=("dockbay", "corridor0"))
    b.add_door("cc0", Point(45.0, 6.0), between=("corridor0", "corridor1"))
    b.add_door("cc1", Point(75.0, 6.0), between=("corridor1", "corridor2"))
    b.add_door("pack-door", Point(105.0, 6.0),
               between=("corridor2", "packing"))
    for i, aisle in enumerate("abc"):
        corridor = f"corridor{i}"
        x0 = 15.0 + i * 30.0
        for j in (1, 2):
            name = f"bin-{aisle}{j}"
            lo = x0 + (j - 1) * 15.0
            pid = b.add_partition(name, Rect(lo, 12.0, lo + 15.0, 30.0))
            b.add_door(f"door-{name}", Point(lo + 7.5, 12.0),
                       between=(name, corridor))
            kindex.assign_iword(pid, name)
            kindex.add_twords(name, CATALOGUE[name])
    return b.build(), kindex


def main() -> None:
    space, kindex = build_warehouse()
    engine = IKRQEngine(space, kindex)
    dock = Point(7.0, 6.0)
    packing = Point(112.0, 6.0)

    orders = [
        ["charger", "webcam"],
        ["notebook", "monitor", "headset"],
        ["bin-a2", "powerbank"],          # mixed i-word + t-word order
    ]
    for order in orders:
        # Coverage dominates for pick paths (missing a product means a
        # second trip); distance breaks ties among covering routes.
        answer = engine.query(
            ps=dock, pt=packing, delta=400.0,
            keywords=order, k=1, alpha=0.8, algorithm="KoE")
        print(f"Order {order}:")
        if not answer.routes:
            print("  no feasible pick path")
            continue
        best = answer.routes[0]
        bins = sorted(w for w in best.route.words if w.startswith("bin-"))
        print(f"  pick path visits {bins}")
        print(f"  travel {best.distance:.0f} m, ρ={best.relevance:.2f}, "
              f"ψ={best.score:.4f}")
        print(f"  {best.route.describe(space)}")


if __name__ == "__main__":
    main()

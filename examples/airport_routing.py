"""The paper's motivating airport scenario (Section I).

Jesper has passed security at the airport and must reach his boarding
gate within a time budget.  On the way he wants Danish cookies, euros
in cash, and a bowl of noodles.  The time budget converts to a
distance constraint Δ = Vmax · T; the needs become query keywords.

Usage::

    python examples/airport_routing.py
"""

from repro.core import IKRQEngine
from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.space import IndoorSpaceBuilder, PartitionKind

#: Maximum indoor walking speed (m/s) used for the T -> Δ conversion.
V_MAX = 1.4


def build_terminal():
    """A small airport pier: a central corridor with shops and gates."""
    b = IndoorSpaceBuilder()
    # Corridor cells from security (west) to the gates (east).
    for i in range(6):
        b.add_partition(f"corridor{i}",
                        Rect(i * 50.0, 0.0, (i + 1) * 50.0, 20.0),
                        PartitionKind.HALLWAY)
        if i:
            b.add_door(f"c{i}", Point(i * 50.0, 10.0),
                       between=(f"corridor{i-1}", f"corridor{i}"))
    shops = [
        ("security", 0, ()),
        ("sweetdanish", 1, ("cookies", "chocolate", "pastry")),
        ("nordicbank", 2, ("euros", "kroner", "exchange")),
        ("atmcorner", 3, ("euros", "cash", "withdrawal")),
        ("noodlehouse", 4, ("noodles", "ramen", "soup")),
        ("espressogate", 4, ("coffee", "espresso")),
        ("gate42", 5, ()),
    ]
    kindex = KeywordIndex()
    for name, cell, twords in shops:
        pid = b.add_partition(name,
                              Rect(cell * 50.0 + 5.0, 20.0,
                                   cell * 50.0 + 45.0, 45.0))
        b.add_door(f"d-{name}", Point(cell * 50.0 + 25.0, 20.0),
                   between=(name, f"corridor{cell}"))
        kindex.assign_iword(pid, name)
        kindex.add_twords(name, twords)
    return b.build(), kindex, b


def main() -> None:
    space, kindex, b = build_terminal()
    engine = IKRQEngine(space, kindex)

    security = Point(25.0, 32.0)   # inside the security partition
    gate = Point(280.0, 32.0)      # inside gate42

    minutes = 12.0
    delta = V_MAX * minutes * 60.0
    print(f"Time budget {minutes:.0f} min -> Δ = {delta:.0f} m "
          f"at Vmax = {V_MAX} m/s")

    # Passengers are distance-sensitive: a small α (Section III-C).
    answer = engine.query(
        ps=security, pt=gate, delta=delta,
        keywords=["cookies", "euros", "noodles"],
        k=3, alpha=0.3, algorithm="ToE")

    print("\nTop routes from security to gate 42:")
    for rank, result in enumerate(answer.routes, start=1):
        covered = [w for w in ("cookies", "euros", "noodles")
                   if any(w in kindex.i2t(wi) for wi in result.route.words)]
        minutes_needed = result.distance / V_MAX / 60.0
        print(f"  #{rank}: ψ={result.score:.4f}  walk {result.distance:.0f} m"
              f" (~{minutes_needed:.1f} min)  covers {covered}")
        print(f"       {result.route.describe(space)}")

    # The same trip in a hurry: 5 minutes only.
    rushed = engine.query(
        ps=security, pt=gate, delta=V_MAX * 5 * 60.0,
        keywords=["cookies", "euros", "noodles"],
        k=1, alpha=0.3, algorithm="ToE")
    print("\nWith only 5 minutes:")
    if rushed.routes:
        best = rushed.routes[0]
        print(f"  best ψ={best.score:.4f} covers ρ={best.relevance:.2f} "
              f"over {best.distance:.0f} m")
    else:
        print("  no feasible route — head straight to the gate!")


if __name__ == "__main__":
    main()

"""The docs tree: link integrity and checker mechanics."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs_links as checker  # noqa: E402


class TestDocsTree:
    def test_expected_pages_exist(self):
        docs = REPO_ROOT / "docs"
        for name in ("architecture.md", "serving.md", "snapshot-format.md",
                     "observability.md"):
            assert (docs / name).exists(), f"docs/{name} missing"

    def test_no_dangling_links(self):
        assert checker.check() == []


class TestCheckerMechanics:
    def test_slugging_matches_github(self):
        assert checker._slug("Metrics reference (`GET /metrics`)") \
            == "metrics-reference-get-metrics"
        assert checker._slug("The layer stack") == "the-layer-stack"

    def test_headings_skip_code_fences(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Real\n```\n# not a heading\n```\n## Also real\n")
        assert checker._headings(page) == {"real", "also-real"}

    def test_links_found_and_code_spans_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "See [a](other.md#real) and `[not](a-link.md)` and "
            "[web](https://example.com).\n")
        assert checker._links(page) == ["other.md#real",
                                        "https://example.com"]

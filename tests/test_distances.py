"""Tests for the intra-partition distance oracle (paper Section II-A)."""

import math

import pytest

from repro.geometry import Point
from repro.space import DistanceOracle

INF = math.inf


@pytest.fixture(scope="module")
def oracle(fig1):
    return DistanceOracle(fig1.space)


class TestDoorToDoor:
    def test_same_partition_euclidean(self, fig1, oracle):
        """Example 1: δd2d(d2, d5) = 4.2 m (through v2)."""
        d2, d5 = fig1.did("d2"), fig1.did("d5")
        assert oracle.d2d(d2, d5) == pytest.approx(4.2, abs=1e-9)

    def test_symmetric_for_two_way_doors(self, fig1, oracle):
        d2, d5 = fig1.did("d2"), fig1.did("d5")
        assert oracle.d2d(d2, d5) == oracle.d2d(d5, d2)

    def test_no_common_partition_is_infinite(self, fig1, oracle):
        # d2 (v1/v2) and d15 (v7/v10) share no partition.
        assert oracle.d2d(fig1.did("d2"), fig1.did("d15")) == INF

    def test_via_restricts_partition(self, fig1, oracle):
        d1, d3 = fig1.did("d1"), fig1.did("d3")
        # Both v1 and v5 connect d1 and d3.
        assert oracle.d2d(d1, d3, via=fig1.pid("v1")) < INF
        assert oracle.d2d(d1, d3, via=fig1.pid("v7")) == INF

    def test_same_door_reentry_is_double_wander(self, fig1, oracle):
        """δd2d(d, d) = 2 × farthest in-partition reach (Section II-A)."""
        d15 = fig1.did("d15")
        v10 = fig1.pid("v10")
        footprint = fig1.space.partition(v10).footprint
        door_pos = fig1.space.door(d15).position
        expected = 2.0 * footprint.farthest_corner_distance(door_pos)
        assert oracle.d2d(d15, d15, via=v10) == pytest.approx(expected)

    def test_reentry_without_via_picks_cheapest_side(self, fig1, oracle):
        d15 = fig1.did("d15")
        v7, v10 = fig1.pid("v7"), fig1.pid("v10")
        both = oracle.d2d(d15, d15)
        assert both == pytest.approx(
            min(oracle.reentry_cost(d15, v7), oracle.reentry_cost(d15, v10)))

    def test_reentry_cached(self, fig1, oracle):
        d15 = fig1.did("d15")
        v10 = fig1.pid("v10")
        first = oracle.reentry_cost(d15, v10)
        assert oracle.reentry_cost(d15, v10) == first


class TestPointDistances:
    def test_pt2d_example1(self, fig1, oracle):
        """Example 1: δpt2d(ps, d2) = 8.3 m."""
        assert oracle.pt2d(fig1.ps, fig1.did("d2")) == pytest.approx(8.3)

    def test_d2pt_example1(self, fig1, oracle):
        """Example 1: δd2pt(d5, pt) = 6 m."""
        assert oracle.d2pt(fig1.did("d5"), fig1.pt) == pytest.approx(6.0)

    def test_d7_to_pt_is_one_meter(self, fig1, oracle):
        """Example 7's |d7, pt| = 1 m (pt is engineered onto the circle)."""
        assert oracle.d2pt(fig1.did("d7"), fig1.pt) == pytest.approx(1.0)

    def test_pt2d_wrong_partition_is_infinite(self, fig1, oracle):
        # ps is in v1; d15 does not leave v1.
        assert oracle.pt2d(fig1.ps, fig1.did("d15")) == INF

    def test_d2pt_wrong_partition_is_infinite(self, fig1, oracle):
        assert oracle.d2pt(fig1.did("d15"), fig1.ps) == INF


class TestItemDistance:
    def test_dispatch_door_door(self, fig1, oracle):
        d2, d5 = fig1.did("d2"), fig1.did("d5")
        assert oracle.item_distance(d2, d5) == oracle.d2d(d2, d5)

    def test_dispatch_point_door(self, fig1, oracle):
        assert oracle.item_distance(fig1.ps, fig1.did("d2")) == pytest.approx(8.3)

    def test_dispatch_door_point(self, fig1, oracle):
        assert oracle.item_distance(fig1.did("d5"), fig1.pt) == pytest.approx(6.0)

    def test_point_point_same_partition(self, fig1, oracle):
        p1, p2 = fig1.points["p1"], fig1.points["p1"].translated(dx=1.0)
        assert oracle.item_distance(p1, p2) == pytest.approx(1.0)

    def test_point_point_different_partitions_infinite(self, fig1, oracle):
        assert oracle.item_distance(fig1.ps, fig1.pt) == INF

    def test_item_position(self, fig1, oracle):
        d2 = fig1.did("d2")
        assert oracle.item_position(d2) == fig1.space.door(d2).position
        assert oracle.item_position(fig1.ps) == fig1.ps

    def test_connecting_partition(self, fig1, oracle):
        d2, d5 = fig1.did("d2"), fig1.did("d5")
        assert oracle.connecting_partition(d2, d5) == fig1.pid("v2")
        assert oracle.connecting_partition(d2, fig1.did("d15")) is None

"""Kernel tier bit-identity: every backend against the interpreted core.

The compiled kernel tier (:mod:`repro.space.kernels`) promises that
swapping backends never changes a single answer byte.  These tests
hold it to that across:

* raw graph state — ``dijkstra`` dist/pred maps, ``dijkstra_tree``
  buffer bytes (including visit order), route reconstruction — under
  randomized banned sets, banned partitions, target sets and bounds,
* the skeleton lower-bound sweeps vs. the per-door interpreted calls,
* engine-level query answers (full result signatures),
* snapshot-loaded engines, both eager heap buffers and ``mmap``-backed
  read-only memoryviews,
* a fuzz sweep over randomized synthetic venues.

Fuzz failures print per-seed reproduction instructions; every fuzz
case is reconstructible from its seed alone.

Backends that are unavailable in the environment (e.g. ``native``
without a C compiler) are skipped here — their graceful python-ward
degradation is covered by the resolution tests, which simulate the
absence instead of requiring it.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.space import DoorGraph
from repro.space import kernels
from repro.space.kernels import (BACKENDS, available_backends, get_suite,
                                 kernel_info, resolve_backend)
from repro.space.skeleton import SkeletonIndex
from tests.conftest import random_small_space

INF = math.inf

AVAILABILITY = available_backends()
#: The faster-than-interpreted backends usable in this environment.
FAST = [name for name in ("numpy", "native") if AVAILABILITY[name] is None]


def tree_bytes(tree):
    return (bytes(tree.dist), bytes(tree.pred), bytes(tree.pred_via),
            bytes(tree.touched))


def answer_signatures(answers):
    return [[(tuple(repr(i) for i in r.route.items), r.route.vias,
              r.distance, r.score) for r in a.routes] for a in answers]


def venues():
    from repro.datasets import paper_fig1
    from repro.datasets.synth import SynthMallConfig, build_synth_mall
    out = [("fig1", paper_fig1().space)]
    for seed in (0, 3):
        space, _, _, _ = random_small_space(seed)
        out.append((f"synthetic{seed}", space))
    mall, _ = build_synth_mall(
        SynthMallConfig(floors=3, rooms_per_floor=10, seed=5))
    out.append(("mall3", mall))
    return out


@pytest.fixture(scope="module", params=venues(), ids=lambda v: v[0])
def venue(request):
    name, space = request.param
    return space


def random_cases(space, rng, n=30):
    doors = sorted(space.doors)
    partitions = sorted(space.partitions)
    for _ in range(n):
        source = rng.choice(doors)
        banned = frozenset(rng.sample(doors, k=rng.randint(0, 3))) - {source}
        banned_parts = (None if rng.random() < 0.5 else frozenset(
            rng.sample(partitions, k=rng.randint(1, 2))))
        bound = rng.choice((INF, rng.uniform(5.0, 80.0)))
        targets = (None if rng.random() < 0.4 else
                   set(rng.sample(doors, k=rng.randint(1, 4))))
        yield source, banned, banned_parts, targets, bound


# ----------------------------------------------------------------------
# Backend selection and degradation
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_backend(None) == "python"
        assert get_suite(None).name == "python"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        expected = "numpy" if AVAILABILITY["numpy"] is None else "python"
        assert resolve_backend(None) == expected

    def test_auto_prefers_fastest_available(self):
        expected = next(name for name in BACKENDS
                        if AVAILABILITY[name] is None)
        assert resolve_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_python_suite_has_no_hooks(self):
        suite = get_suite("python")
        assert suite.name == "python"
        assert suite.sssp is None and suite.freeze is None
        assert suite.sweep_from is None and suite.sweep_to is None

    def test_named_backend_degrades_python_ward(self, monkeypatch):
        # Simulate a box with no compiled tiers at all: asking for the
        # fastest backend by name must yield the interpreted core, not
        # an error — the serve fleet relies on this when a container
        # image lacks a C compiler.
        monkeypatch.setattr(
            kernels, "_suites", {"python": kernels._PYTHON_SUITE})
        monkeypatch.setattr(kernels, "_unavailable", {
            "native": "KernelUnavailable: simulated",
            "numpy": "ImportError: simulated",
        })
        assert resolve_backend("native") == "python"
        assert resolve_backend("numpy") == "python"
        assert resolve_backend("auto") == "python"
        info = kernel_info("native")
        assert info["active"] == "python"
        assert "simulated" in info["available"]["native"]

    def test_native_degrades_to_numpy_first(self, monkeypatch):
        if AVAILABILITY["numpy"] is not None:
            pytest.skip("numpy backend unavailable")
        monkeypatch.setattr(kernels, "_suites", {
            "python": kernels._PYTHON_SUITE,
            "numpy": kernels._suites["numpy"],
        })
        monkeypatch.setattr(kernels, "_unavailable",
                            {"native": "KernelUnavailable: simulated"})
        assert resolve_backend("native") == "numpy"

    def test_engine_reports_backend(self):
        space, kindex, _, _ = random_small_space(1)
        engine = IKRQEngine(space, kindex)
        assert engine.kernel_backend == "python"
        info = engine.kernel_info()
        assert info["active"] == "python"
        assert set(info["available"]) == set(BACKENDS)


# ----------------------------------------------------------------------
# Raw graph identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST)
class TestGraphIdentity:
    def test_dijkstra_state_matches_interpreted(self, venue, backend):
        space = venue
        plain = DoorGraph(space)
        fast = DoorGraph(space)
        fast.set_kernel(get_suite(backend))
        assert fast.kernel_name == backend
        rng = random.Random(23)
        for source, banned, bp, targets, bound in random_cases(space, rng):
            ref = plain.dijkstra(source, banned=banned,
                                 targets=set(targets) if targets else None,
                                 bound=bound, banned_partitions=bp)
            got = fast.dijkstra(source, banned=banned,
                                targets=set(targets) if targets else None,
                                bound=bound, banned_partitions=bp)
            assert got == ref

    def test_tree_buffers_match_interpreted(self, venue, backend):
        space = venue
        plain = DoorGraph(space)
        fast = DoorGraph(space)
        fast.set_kernel(get_suite(backend))
        for source in sorted(space.doors)[::3]:
            ref = plain.dijkstra_tree(source)
            got = fast.dijkstra_tree(source)
            assert tree_bytes(got) == tree_bytes(ref)

    def test_routes_match_interpreted(self, venue, backend):
        space = venue
        plain = DoorGraph(space)
        fast = DoorGraph(space)
        fast.set_kernel(get_suite(backend))
        rng = random.Random(29)
        doors = sorted(space.doors)
        for _ in range(25):
            source = rng.choice(doors)
            vias = sorted(space.d2p_leave(source))
            if not vias:
                continue
            first_via = rng.choice(vias)
            targets = set(rng.sample(doors, k=rng.randint(1, 5)))
            banned = frozenset(rng.sample(doors, k=rng.randint(0, 3)))
            bp = (None if rng.random() < 0.5 else
                  frozenset(rng.sample(sorted(space.partitions), k=1)))
            bound = rng.choice((INF, rng.uniform(5.0, 80.0)))
            ref = plain.multi_target_routes(source, first_via, targets,
                                            banned=banned, bound=bound,
                                            banned_partitions=bp)
            got = fast.multi_target_routes(source, first_via, targets,
                                           banned=banned, bound=bound,
                                           banned_partitions=bp)
            assert got == ref

    def test_point_routes_match_interpreted(self, venue, backend):
        space = venue
        plain = DoorGraph(space)
        fast = DoorGraph(space)
        fast.set_kernel(get_suite(backend))
        rng = random.Random(31)
        doors = sorted(space.doors)
        partitions = sorted(space.partitions)
        for _ in range(20):
            pid = rng.choice(partitions)
            p = space.partition(pid).footprint.random_interior_point(rng)
            host = space.host_partition(p).pid
            targets = set(rng.sample(doors, k=rng.randint(1, 4)))
            banned = frozenset(rng.sample(doors, k=rng.randint(0, 3)))
            ref = plain.routes_from_point(p, host, targets, banned=banned)
            got = fast.routes_from_point(p, host, targets, banned=banned)
            assert got == ref


class TestBannedPartitions:
    """The first-class banned-partition API on the interpreted core."""

    def test_banned_partition_excludes_its_edges(self, venue):
        space = venue
        graph = DoorGraph(space)
        rng = random.Random(37)
        doors = sorted(space.doors)
        partitions = sorted(space.partitions)
        for _ in range(15):
            source = rng.choice(doors)
            bp = frozenset(rng.sample(partitions, k=rng.randint(1, 2)))
            dist, pred = graph.dijkstra(source, banned_partitions=bp)
            # No settled door may have been reached through a banned
            # partition.
            for door, (prev, via) in pred.items():
                assert via not in bp, (door, via)

    def test_empty_set_equals_none(self, venue):
        space = venue
        graph = DoorGraph(space)
        source = sorted(space.doors)[0]
        assert (graph.dijkstra(source, banned_partitions=frozenset())
                == graph.dijkstra(source))


# ----------------------------------------------------------------------
# Lower-bound sweep identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST)
class TestSweepIdentity:
    def test_sweeps_match_per_door_calls(self, venue, backend):
        space = venue
        plain = SkeletonIndex(space)
        fast = SkeletonIndex(space)
        fast.set_kernel(get_suite(backend))
        assert fast.kernel_name == backend
        rng = random.Random(41)
        doors = sorted(space.doors)
        partitions = sorted(space.partitions)
        endpoints = [rng.choice(doors) for _ in range(3)]
        for pid in rng.sample(partitions, k=min(3, len(partitions))):
            endpoints.append(
                space.partition(pid).footprint.random_interior_point(rng))
        for endpoint in endpoints:
            ha = plain.heads(endpoint)
            ref_from = {did: plain.lower_bound_heads(ha, plain.heads(did))
                        for did in doors}
            ref_to = {did: plain.lower_bound_heads(plain.heads(did), ha)
                      for did in doors}
            assert fast.lower_bound_sweep_from(fast.heads(endpoint)) \
                == ref_from
            assert fast.lower_bound_sweep_to(fast.heads(endpoint)) == ref_to

    def test_detached_sweep_equals_attached(self, venue, backend):
        space = venue
        skeleton = SkeletonIndex(space)
        door = sorted(space.doors)[0]
        ha = skeleton.heads(door)
        interpreted = skeleton.lower_bound_sweep_from(ha)
        skeleton.set_kernel(get_suite(backend))
        assert skeleton.lower_bound_sweep_from(ha) == interpreted
        skeleton.set_kernel(None)
        assert skeleton.kernel_name == "python"
        assert skeleton.lower_bound_sweep_from(ha) == interpreted


# ----------------------------------------------------------------------
# Engine-level and snapshot identity
# ----------------------------------------------------------------------
def mall_fixture():
    from repro.datasets.synth import SynthMallConfig, build_synth_mall
    space, kindex = build_synth_mall(
        SynthMallConfig(floors=2, rooms_per_floor=10, seed=9))
    return space, kindex


def mall_queries(space, kindex, rng, n=6):
    doors = sorted(space.doors)
    iwords = sorted(kindex.iwords)
    queries = []
    for _ in range(n):
        ps = space.door(rng.choice(doors)).position
        pt = space.door(rng.choice(doors)).position
        keywords = tuple(rng.sample(iwords, k=min(3, len(iwords))))
        queries.append(IKRQ(ps=ps, pt=pt, delta=rng.uniform(60.0, 140.0),
                            keywords=keywords, k=rng.choice((1, 3))))
    return queries


@pytest.mark.parametrize("backend", FAST)
class TestEngineIdentity:
    def test_answers_match_interpreted_engine(self, backend):
        space, kindex = mall_fixture()
        queries = mall_queries(space, kindex, random.Random(43))
        plain = IKRQEngine(space, kindex)
        fast = IKRQEngine(space, kindex, kernel=backend)
        assert fast.kernel_backend == backend
        assert fast.kernel_info()["active"] == backend
        ref = [plain.search(q, "ToE") for q in queries]
        got = [fast.search(q, "ToE") for q in queries]
        assert answer_signatures(got) == answer_signatures(ref)

    @pytest.mark.parametrize("mapped", [False, True],
                             ids=["eager", "mmap"])
    def test_snapshot_loaded_engine_matches(self, backend, mapped,
                                            tmp_path):
        from repro.serve.snapshot import load_snapshot, save_snapshot
        space, kindex = mall_fixture()
        rng = random.Random(47)
        queries = mall_queries(space, kindex, rng)
        plain = IKRQEngine(space, kindex)
        ref = [plain.search(q, "ToE") for q in queries]
        path = tmp_path / "venue.snap.bin"
        save_snapshot(path, plain, binary=True)
        loaded = load_snapshot(path, mmap=mapped, kernel=backend)
        got = [loaded.search(q, "ToE") for q in queries]
        assert answer_signatures(got) == answer_signatures(ref)
        # Raw banned-set runs over the loaded buffers (read-only
        # memoryviews under mmap) must also match the live graph.
        doors = sorted(space.doors)
        for _ in range(10):
            source = rng.choice(doors)
            banned = frozenset(rng.sample(doors, k=2)) - {source}
            assert (loaded.graph.dijkstra(source, banned=banned)
                    == plain.graph.dijkstra(source, banned=banned))


# ----------------------------------------------------------------------
# Fuzz sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_fuzz_random_venues_bit_identical(seed):
    """Randomized venues x randomized runs, every available backend.

    Reproduce one failing seed with::

        PYTHONPATH=src python -m pytest \
            "tests/test_kernels.py::test_fuzz_random_venues_bit_identical[SEED]"

    or interactively::

        from tests.conftest import random_small_space
        space, _, _, _ = random_small_space(SEED)

    and replay the printed case tuple against ``DoorGraph.dijkstra``.
    """
    if not FAST:
        pytest.skip("no accelerated backend available")
    space, _, _, _ = random_small_space(seed, n_rooms=4 + seed % 3)
    plain = DoorGraph(space)
    fast_graphs = []
    for backend in FAST:
        g = DoorGraph(space)
        g.set_kernel(get_suite(backend))
        fast_graphs.append((backend, g))
    rng = random.Random(1000 + seed)
    for case in random_cases(space, rng, n=20):
        source, banned, bp, targets, bound = case
        ref = plain.dijkstra(source, banned=banned,
                             targets=set(targets) if targets else None,
                             bound=bound, banned_partitions=bp)
        for backend, g in fast_graphs:
            got = g.dijkstra(source, banned=banned,
                             targets=set(targets) if targets else None,
                             bound=bound, banned_partitions=bp)
            assert got == ref, (
                f"kernel {backend!r} diverged on venue seed {seed}, case "
                f"{case!r}; reproduce with random_small_space({seed}, "
                f"n_rooms={4 + seed % 3}) and this exact case tuple")

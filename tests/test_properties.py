"""Property-based tests (hypothesis) on core invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import IKRQ, IKRQEngine, PrimeTable
from repro.core.route import Route
from repro.geometry import Point
from tests.conftest import random_small_space

slow = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Prime table algebra
# ----------------------------------------------------------------------
class TestPrimeTableProperties:
    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.floats(0.1, 100.0)), min_size=1, max_size=30))
    def test_table_records_minimum(self, updates):
        table = PrimeTable()
        best = {}
        for tail, dist in updates:
            table.update(tail, (1, 2), dist)
            best[tail] = min(best.get(tail, math.inf), dist)
        for tail, expected in best.items():
            assert table.best(tail, (1, 2)) == expected

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    def test_check_consistent_with_updates(self, distances):
        table = PrimeTable()
        for d in distances:
            table.update(0, (), d)
        m = min(distances)
        assert table.check(0, (), m)
        assert not table.check(0, (), m + 1.0)


# ----------------------------------------------------------------------
# Regularity as a language property
# ----------------------------------------------------------------------
door_seq = st.lists(st.integers(0, 4), min_size=0, max_size=8)


class TestRegularityProperties:
    @staticmethod
    def build(doors):
        route = Route(items=(Point(0, 0),), vias=(), distance=0.0,
                      words=frozenset(), sims=(0.0,), door_counts={})
        for d in doors:
            if not route.may_append_door(d):
                return route, False
            route = route.extended(d, 0, 1.0, route.words,
                                   route.sims, route.kp)
        return route, True

    @given(door_seq)
    def test_incremental_construction_is_regular(self, doors):
        route, ok = self.build(doors)
        assert route.is_regular()

    @given(door_seq)
    def test_audit_agrees_with_incremental(self, doors):
        """A sequence builds fully iff its door string is regular."""
        route, ok = self.build(doors)
        if ok:
            assert route.doors == tuple(doors)
        else:
            # The rejected prefix plus the offending door must violate
            # the audit.
            prefix = route.doors
            bad = doors[len(prefix)]
            probe, _ = self.build(list(prefix))
            assert not self._audit_allows(list(prefix), bad)

    @staticmethod
    def _audit_allows(prefix, nxt):
        seq = prefix + [nxt]
        counts = {}
        last = {}
        for pos, d in enumerate(seq):
            counts[d] = counts.get(d, 0) + 1
            if counts[d] > 2:
                return False
            if counts[d] == 2 and last[d] != pos - 1:
                return False
            last[d] = pos
        return True


# ----------------------------------------------------------------------
# Search invariants on random venues
# ----------------------------------------------------------------------
class TestSearchInvariants:
    @slow
    @given(seed=st.integers(0, 10_000),
           alpha=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
           k=st.integers(1, 4))
    def test_returned_routes_satisfy_problem1(self, seed, alpha, k):
        space, kindex, ps, pt = random_small_space(seed % 64)
        engine = IKRQEngine(space, kindex)
        iword = sorted(kindex.iwords)[seed % len(kindex.iwords)]
        query = IKRQ(ps=ps, pt=pt, delta=60.0 + (seed % 40),
                     keywords=(iword,), k=k, alpha=alpha)
        answer = engine.search(query, "ToE")
        ctx = engine.context(query)
        scores = [r.score for r in answer.routes]
        assert scores == sorted(scores, reverse=True)
        for r in answer.routes:
            assert r.route.distance <= query.delta + 1e-9
            assert r.route.is_regular()
            assert r.route.is_complete
            # Ranking score within [0, 1] by construction.
            assert -1e-9 <= r.score <= 1.0 + 1e-9
            # Relevance range of Definition 6.
            assert r.relevance == 0.0 or 1.0 < r.relevance <= 2.0 + 1e-9
            # Incremental KP equals recomputed KP.
            assert r.kp == ctx.recompute_key_partitions(r.route)

    @slow
    @given(seed=st.integers(0, 10_000))
    def test_kp_incremental_equals_recomputed_partials(self, seed):
        """Incremental KP maintenance on all expanded partial routes."""
        space, kindex, ps, pt = random_small_space(seed % 64)
        engine = IKRQEngine(space, kindex)
        iword = sorted(kindex.iwords)[0]
        query = IKRQ(ps=ps, pt=pt, delta=70.0, keywords=(iword,), k=2)
        ctx = engine.context(query)
        route = ctx.start_route()
        import random as _r
        rng = _r.Random(seed)
        partition = ctx.v_ps
        for _ in range(6):
            doors = [d for d in space.p2d_leave(partition)
                     if route.may_append_door(d)]
            if not doors:
                break
            door = rng.choice(doors)
            nxt = ctx.extend_to_door(route, door, via=partition)
            if nxt is None:
                break
            route = nxt
            options = space.d2p_enter(door) - {partition}
            if not options:
                break
            partition = min(options)
            assert route.kp == ctx.recompute_key_partitions(route)

    @slow
    @given(seed=st.integers(0, 10_000),
           delta_lo=st.floats(30.0, 50.0),
           extra=st.floats(5.0, 40.0))
    def test_delta_monotonicity(self, seed, delta_lo, extra):
        """A larger Δ never loses classes found under a smaller Δ
        whose routes still fit (scores change, classes persist)."""
        space, kindex, ps, pt = random_small_space(seed % 64)
        engine = IKRQEngine(space, kindex)
        iword = sorted(kindex.iwords)[0]
        small = engine.search(IKRQ(ps=ps, pt=pt, delta=delta_lo,
                                   keywords=(iword,), k=10), "naive")
        large = engine.search(IKRQ(ps=ps, pt=pt, delta=delta_lo + extra,
                                   keywords=(iword,), k=50), "naive")
        small_classes = {r.kp for r in small.routes}
        large_classes = {r.kp for r in large.routes}
        assert small_classes <= large_classes

    @slow
    @given(seed=st.integers(0, 10_000))
    def test_skeleton_lower_bounds_search_distance(self, seed):
        """Every complete route's distance ≥ the skeleton |ps, pt|L."""
        space, kindex, ps, pt = random_small_space(seed % 64)
        engine = IKRQEngine(space, kindex)
        iword = sorted(kindex.iwords)[0]
        query = IKRQ(ps=ps, pt=pt, delta=80.0, keywords=(iword,), k=5)
        answer = engine.search(query, "ToE")
        lb = engine.skeleton.lower_bound(ps, pt)
        for r in answer.routes:
            assert r.distance >= lb - 1e-9


# ----------------------------------------------------------------------
# Ranking score algebra (Equation 1)
# ----------------------------------------------------------------------
class TestRankingProperties:
    @given(alpha=st.floats(0.0, 1.0),
           rho=st.floats(0.0, 3.0),
           dist=st.floats(0.0, 100.0))
    def test_score_bounds(self, alpha, rho, dist):
        delta, m = 100.0, 2
        keyword_part = rho / (m + 1)
        spatial_part = (delta - dist) / delta
        psi = alpha * keyword_part + (1 - alpha) * spatial_part
        assert -1e-9 <= psi <= 1.0 + 1e-9

    @given(alpha=st.floats(0.01, 1.0), dist=st.floats(0.0, 99.0))
    def test_score_monotone_in_relevance(self, alpha, dist):
        delta, m = 100.0, 2
        lo = alpha * (1.0 / (m + 1)) + (1 - alpha) * (delta - dist) / delta
        hi = alpha * (3.0 / (m + 1)) + (1 - alpha) * (delta - dist) / delta
        assert hi >= lo

    @given(alpha=st.floats(0.0, 0.99), rho=st.floats(0.0, 3.0),
           d1=st.floats(0.0, 100.0), d2=st.floats(0.0, 100.0))
    def test_score_monotone_in_distance(self, alpha, rho, d1, d2):
        delta, m = 100.0, 2
        def psi(d):
            return alpha * rho / (m + 1) + (1 - alpha) * (delta - d) / delta
        if d1 <= d2:
            assert psi(d1) >= psi(d2) - 1e-12

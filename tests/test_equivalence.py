"""Cross-algorithm equivalence on randomized small venues.

The naive exhaustive search defines ground truth (all regular complete
routes, prime-filtered, ranked by ψ).  The key guarantees tested:

* ToE and its pruning ablations return exactly the ground truth —
  Pruning Rules 1–5 are *lossless* for the topology-oriented search,
* every route returned by any algorithm is regular, within Δ, prime
  within its class, and correctly scored,
* KoE returns a subset of ground-truth classes with identical class
  representatives (its expansion intentionally skips partitions of
  already-covered keywords, so lower-ranked classes can differ — see
  DESIGN.md), and its top-1 matches whenever its class space contains
  the global best.
"""

import pytest

from repro.core import IKRQ, IKRQEngine, NaiveSearch
from tests.conftest import random_small_space

SEEDS = list(range(12))


def build_query(space, kindex, ps, pt, seed):
    import random
    rng = random.Random(seed + 1000)
    iwords = sorted(kindex.iwords)
    twords = sorted(kindex.vocabulary.twords)
    kws = [rng.choice(iwords)]
    if twords and rng.random() < 0.7:
        kws.append(rng.choice(twords))
    return IKRQ(ps=ps, pt=pt,
                delta=rng.uniform(45.0, 90.0),
                keywords=tuple(kws),
                k=rng.choice((1, 2, 3, 5)),
                alpha=rng.choice((0.1, 0.5, 0.9)),
                tau=0.2)


@pytest.fixture(params=SEEDS)
def scenario(request):
    space, kindex, ps, pt = random_small_space(request.param)
    engine = IKRQEngine(space, kindex)
    query = build_query(space, kindex, ps, pt, request.param)
    truth = engine.search(query, "naive")
    return engine, query, truth


def as_signature(routes):
    return [(r.kp, round(r.distance, 6), round(r.score, 6))
            for r in routes]


class TestToEMatchesGroundTruth:
    """Exhaustive ToE (Algorithm 5's stop-after-coverage heuristic
    disabled) must reproduce the naive ground truth exactly — i.e.,
    Pruning Rules 1–5 are lossless."""

    @pytest.mark.parametrize("name", ["ToE", "ToE-D", "ToE-B"])
    def test_exhaustive_toe_variants(self, scenario, name):
        from repro.core import config_for
        engine, query, truth = scenario
        answer = engine.search(query, name,
                               config=config_for(name, exhaustive=True))
        assert as_signature(answer.routes) == as_signature(truth.routes)

    def test_default_heuristic_only_drops_dominated_classes(self, scenario):
        """Paper-default ToE may omit classes extending beyond full
        keyword coverage; whatever it returns must match ground truth
        rank-for-rank until the first omission, and its top-1 always
        matches."""
        engine, query, truth = scenario
        answer = engine.search(query, "ToE")
        truth_sig = as_signature(truth.routes)
        got_sig = as_signature(answer.routes)
        if truth_sig:
            assert got_sig, "paper heuristic lost all routes"
            assert got_sig[0] == truth_sig[0]
        # Every returned class must be in the ground truth with the
        # same prime distance and score.
        truth_map = {kp: (d, s) for kp, d, s in truth_sig}
        big = IKRQ(ps=query.ps, pt=query.pt, delta=query.delta,
                   keywords=query.keywords, k=50,
                   alpha=query.alpha, tau=query.tau)
        full_map = {r.kp: (round(r.distance, 6), round(r.score, 6))
                    for r in engine.search(big, "naive").routes}
        for kp, d, s in got_sig:
            assert full_map.get(kp) == (d, s)


class TestResultValidity:
    @pytest.mark.parametrize("algorithm", ["ToE", "KoE", "KoE*", "ToE-P"])
    def test_returned_routes_valid(self, scenario, algorithm):
        engine, query, truth = scenario
        answer = engine.search(query, algorithm)
        for r in answer.routes:
            route = r.route
            assert route.is_complete
            assert route.is_regular()
            assert route.distance <= query.delta + 1e-9
            # Score consistency with Equation 1.
            ctx = engine.context(query)
            assert r.score == pytest.approx(ctx.ranking_score(route))

    @pytest.mark.parametrize("algorithm", ["ToE", "KoE", "KoE*"])
    def test_no_homogeneous_pairs(self, scenario, algorithm):
        engine, query, truth = scenario
        answer = engine.search(query, algorithm)
        kps = [r.kp for r in answer.routes]
        assert len(kps) == len(set(kps))

    @pytest.mark.parametrize("algorithm", ["ToE", "KoE", "KoE*"])
    def test_routes_are_prime_against_ground_truth(self, scenario, algorithm):
        """No returned route may be longer than the ground-truth prime
        of its homogeneity class."""
        engine, query, truth = scenario
        truth_by_class = {r.kp: r for r in truth.routes}
        # The naive top-k may omit classes below rank k; recompute a
        # full class map from an exhaustive run with a large k.
        big = IKRQ(ps=query.ps, pt=query.pt, delta=query.delta,
                   keywords=query.keywords, k=50,
                   alpha=query.alpha, tau=query.tau)
        full = {r.kp: r for r in engine.search(big, "naive").routes}
        answer = engine.search(query, algorithm)
        for r in answer.routes:
            prime = full.get(r.kp)
            assert prime is not None, f"{algorithm} invented class {r.kp}"
            assert r.distance <= prime.distance + 1e-6, (
                f"{algorithm} returned a non-prime route for {r.kp}")


class TestKoEAgainstGroundTruth:
    def test_koe_classes_match_truth_reps(self, scenario):
        engine, query, truth = scenario
        big = IKRQ(ps=query.ps, pt=query.pt, delta=query.delta,
                   keywords=query.keywords, k=50,
                   alpha=query.alpha, tau=query.tau)
        full = {r.kp: r for r in engine.search(big, "naive").routes}
        answer = engine.search(query, "KoE")
        for r in answer.routes:
            assert r.kp in full
            assert r.distance == pytest.approx(full[r.kp].distance, abs=1e-6)

    def test_koe_star_equals_koe(self, scenario):
        engine, query, truth = scenario
        koe = engine.search(query, "KoE")
        star = engine.search(query, "KoE*")
        assert as_signature(koe.routes) == as_signature(star.routes)

    def test_koe_top1_at_least_naive_when_shared(self, scenario):
        """When KoE reaches the globally best class, scores agree."""
        engine, query, truth = scenario
        if not truth.routes:
            return
        answer = engine.search(query, "KoE")
        if not answer.routes:
            return
        best_truth = truth.routes[0]
        if answer.routes[0].kp == best_truth.kp:
            assert answer.routes[0].score == pytest.approx(best_truth.score)


class TestToEPSuperset:
    def test_toep_top1_not_worse(self, scenario):
        """Without pruning the best-scoring route is still found."""
        engine, query, truth = scenario
        answer = engine.search(query, "ToE-P")
        if truth.routes and answer.routes:
            # ToE-P ranks by score without primality dedup, so its top
            # score is >= the deduplicated ground truth's top score.
            assert answer.routes[0].score >= truth.routes[0].score - 1e-9

"""Tests for the `python -m repro.bench` experiment runner."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import DESCRIPTIONS, FIGURE_AXES, main
from repro.bench.experiments import REGISTRY


class TestCliMetadata:
    def test_axes_cover_registry(self):
        assert set(FIGURE_AXES) == set(REGISTRY)

    def test_descriptions_cover_registry(self):
        assert set(DESCRIPTIONS) == set(REGISTRY)


class TestCliInvocation:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "fig20" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_runs_one_figure(self, capsys):
        code = main(["fig10", "--scale", "0.08",
                     "--instances", "1", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[time_ms]" in out
        assert "ToE" in out and "KoE" in out

    def test_subprocess_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--list"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "fig04" in result.stdout

    def test_json_export(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        code = main(["fig10", "--scale", "0.08", "--instances", "1",
                     "--repeats", "1", "--json", str(out)])
        assert code == 0
        import json
        doc = json.loads(out.read_text())
        assert doc["figures"][0]["figure"] == "fig10"
        runs = doc["figures"][0]["settings"][0]["runs"]
        assert "ToE" in runs and "time_ms" in runs["ToE"]

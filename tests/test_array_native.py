"""Array-native core ⇔ retained dict reference core equivalence.

The flat/bitmask implementations (CSR workspaces + FlatTree results,
flat δs2s with precomputed attachments, interned-bitmask keyword
matching, flat door-matrix rows) must reproduce the dict-of-dict
reference semantics of ``repro.space.baseline`` exactly — same
numbers, same orders, same answers.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.core.query import QueryContext
from repro.datasets import paper_fig1
from repro.datasets.synth import SynthMallConfig, build_synth_mall
from repro.keywords.matching import QueryKeywords, candidate_iword_set
from repro.serve.wire import answer_to_wire, canonical_json
from repro.space.baseline import (DictDoorGraph, DictDoorMatrix,
                                  DictQueryKeywords, DictSkeletonIndex,
                                  build_reference_engine, reference_context,
                                  set_candidate_iword_set)
from repro.space.graph import DoorGraph, DoorMatrix, FlatTree
from repro.space.skeleton import SkeletonIndex


@pytest.fixture(scope="module")
def mall():
    return build_synth_mall(SynthMallConfig(
        floors=3, rooms_per_floor=16, words_per_room=5, seed=11))


@pytest.fixture(scope="module")
def mall_graph(mall):
    return DoorGraph(mall[0])


@pytest.fixture(scope="module")
def mall_dict_graph(mall):
    return DictDoorGraph(mall[0])


# ----------------------------------------------------------------------
# Keywords: bitmask vs. frozenset algebra
# ----------------------------------------------------------------------
class TestKeywordMasks:
    def test_candidate_sets_match_reference(self, fig1, mall):
        for kindex in (fig1.kindex, mall[1]):
            words = (sorted(kindex.iwords)
                     + sorted(kindex.vocabulary.twords)[:40]
                     + ["definitely-unknown-word"])
            for word in words:
                assert (candidate_iword_set(kindex, word)
                        == set_candidate_iword_set(kindex, word)), word

    def test_candidate_sets_match_across_tau(self, mall):
        kindex = mall[1]
        for tau in (0.0, 0.1, 0.35, 0.9):
            for word in sorted(kindex.vocabulary.twords)[:15]:
                assert (candidate_iword_set(kindex, word, tau)
                        == set_candidate_iword_set(kindex, word, tau))

    def test_relevance_of_iword_set_matches_reference(self, mall):
        kindex = mall[1]
        iwords = sorted(kindex.iwords)
        twords = sorted(kindex.vocabulary.twords)
        rng = random.Random(5)
        queries = [tuple(rng.sample(iwords, 2) + rng.sample(twords, 2))
                   for _ in range(6)]
        for keywords in queries:
            fast = QueryKeywords(kindex, keywords)
            slow = DictQueryKeywords(kindex, keywords)
            assert fast.candidates == slow.candidates
            for _ in range(24):
                subset = frozenset(rng.sample(iwords,
                                              rng.randrange(0, 6)))
                assert (fast.relevance_of_iword_set(subset)
                        == slow.relevance_of_iword_set(subset))

    def test_relevance_mask_equals_set(self, mall):
        kindex = mall[1]
        iwords = sorted(kindex.iwords)
        qk = QueryKeywords(kindex, (iwords[0], iwords[3]))
        subset = frozenset(iwords[:4])
        assert (qk.relevance_of_iword_mask(kindex.iword_mask(subset))
                == qk.relevance_of_iword_set(subset))

    def test_iword_interning(self, mall):
        kindex = mall[1]
        for wi in kindex.iwords:
            wid = kindex.iword_id(wi)
            assert wid is not None
            assert kindex.iword_name(wid) == wi
        assert kindex.iword_id("nope-not-a-word") is None


# ----------------------------------------------------------------------
# Skeleton: flat attachments vs. nested lists
# ----------------------------------------------------------------------
class TestSkeletonEquivalence:
    def test_lower_bounds_match(self, mall):
        space = mall[0]
        flat = SkeletonIndex(space)
        nested = DictSkeletonIndex(space)
        doors = sorted(space.doors)
        rng = random.Random(3)
        pairs = [(rng.choice(doors), rng.choice(doors)) for _ in range(200)]
        for di, dj in pairs:
            assert flat.lower_bound(di, dj) == nested.lower_bound(di, dj)

    def test_point_lower_bounds_match(self, mall):
        space = mall[0]
        flat = SkeletonIndex(space)
        nested = DictSkeletonIndex(space)
        rng = random.Random(4)
        pids = sorted(space.partitions)
        doors = sorted(space.doors)
        for _ in range(40):
            pid = rng.choice(pids)
            p = space.partition(pid).footprint.random_interior_point(rng)
            d = rng.choice(doors)
            assert flat.lower_bound(p, d) == nested.lower_bound(p, d)
            assert flat.lower_bound(d, p) == nested.lower_bound(d, p)

    def test_via_partition_matches(self, mall):
        space = mall[0]
        flat = SkeletonIndex(space)
        nested = DictSkeletonIndex(space)
        rng = random.Random(6)
        pids = sorted(space.partitions)
        for _ in range(20):
            ps = space.partition(
                rng.choice(pids)).footprint.random_interior_point(rng)
            pt = space.partition(
                rng.choice(pids)).footprint.random_interior_point(rng)
            pid = rng.choice(pids)
            assert (flat.lower_bound_via_partition(ps, pid, pt)
                    == nested.lower_bound_via_partition(ps, pid, pt))

    def test_export_unchanged_by_flat_layout(self, mall):
        space = mall[0]
        flat = SkeletonIndex(space)
        rebuilt = SkeletonIndex.from_precomputed(
            space, **{"stair_doors": flat.export()["stair_doors"],
                      "s2s": flat.export()["s2s"]})
        assert rebuilt.export() == flat.export()
        assert rebuilt.lower_bound(sorted(space.doors)[0],
                                   sorted(space.doors)[-1]) \
            == flat.lower_bound(sorted(space.doors)[0],
                                sorted(space.doors)[-1])


# ----------------------------------------------------------------------
# Graph: CSR workspaces vs. dict Dijkstra
# ----------------------------------------------------------------------
class TestGraphEquivalence:
    def test_dijkstra_dicts_match(self, mall_graph, mall_dict_graph, mall):
        doors = sorted(mall[0].doors)
        rng = random.Random(9)
        for source in rng.sample(doors, 12):
            dist_a, pred_a = mall_graph.dijkstra(source)
            dist_b, pred_b = mall_dict_graph.dijkstra(source)
            assert dist_a == dist_b
            assert pred_a == pred_b

    def test_multi_target_routes_match(self, mall_graph, mall_dict_graph,
                                       mall):
        space = mall[0]
        rng = random.Random(10)
        doors = sorted(space.doors)
        checked = 0
        for source in rng.sample(doors, 30):
            vias = sorted(space.d2p_enter(source))
            if not vias:
                continue
            first_via = vias[0]
            targets = set(rng.sample(doors, 8))
            got = mall_graph.multi_target_routes(source, first_via, targets)
            ref = mall_dict_graph.multi_target_routes(
                source, first_via, targets)
            assert got == ref
            checked += 1
        assert checked > 10

    def test_point_attachment_map_matches(self, mall_graph,
                                          mall_dict_graph, mall):
        space = mall[0]
        rng = random.Random(12)
        pid = sorted(space.partitions)[3]
        p = space.partition(pid).footprint.random_interior_point(rng)
        host_a, dist_a, pred_a = mall_graph.point_attachment_map(p)
        host_b, dist_b, pred_b = mall_dict_graph.point_attachment_map(p)
        assert host_a == host_b
        assert dict(dist_a) == dist_b
        assert dict(pred_a) == pred_b
        # Mapping protocol of the flat views.
        some_door = next(iter(dist_b))
        assert dist_a[some_door] == dist_b[some_door]
        assert dist_a.get(-999) is None
        assert len(dist_a) == len(dist_b)


# ----------------------------------------------------------------------
# Door matrix: flat trees vs. dict rows
# ----------------------------------------------------------------------
class TestFlatMatrix:
    def test_distance_and_route_match_dict_rows(self, mall_graph,
                                                mall_dict_graph, mall):
        flat = DoorMatrix(mall_graph)
        ref = DictDoorMatrix(mall_dict_graph)
        doors = sorted(mall[0].doors)
        rng = random.Random(13)
        for _ in range(60):
            di = rng.choice(doors)
            dj = rng.choice(doors)
            assert flat.distance(di, dj) == ref.distance(di, dj)
            assert flat.route(di, dj) == ref.route(di, dj)

    def test_warm_rows_round_trip(self, mall_graph, mall):
        matrix = DoorMatrix(mall_graph)
        doors = sorted(mall[0].doors)[:5]
        for did in doors:
            matrix.distance(did, doors[0])
        rows = matrix.warm_rows()
        fresh = DoorMatrix(mall_graph)
        fresh.preload_rows(rows)
        assert fresh.warm_rows() == rows
        for did in doors:
            assert (fresh.route(did, doors[-1])
                    == matrix.route(did, doors[-1]))

    def test_flat_tree_from_dicts_round_trip(self, mall_graph, mall):
        source = sorted(mall[0].doors)[0]
        tree = mall_graph.dijkstra_tree(source)
        rebuilt = FlatTree.from_dicts(mall_graph, tree.dist_dict(),
                                      tree.pred_dict())
        assert rebuilt.dist_dict() == tree.dist_dict()
        assert rebuilt.pred_dict() == tree.pred_dict()
        target = sorted(mall[0].doors)[-1]
        assert rebuilt.route_to(target) == tree.route_to(target)


# ----------------------------------------------------------------------
# End to end: whole-engine equivalence
# ----------------------------------------------------------------------
def _wire(answer):
    return canonical_json(answer_to_wire(answer))


class TestEngineEquivalence:
    def test_fig1_all_algorithms(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        reference = build_reference_engine(fig1.space, fig1.kindex)
        cases = [
            (IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                  keywords=("latte", "apple"), k=3), algo)
            for algo in ("ToE", "KoE", "KoE*", "ToE-D", "ToE-B",
                         "KoE-D", "KoE-B", "naive")
        ] + [
            (IKRQ(ps=fig1.pt, pt=fig1.ps, delta=70.0,
                  keywords=("coffee", "phone"), k=5, alpha=0.3), algo)
            for algo in ("ToE", "KoE", "KoE*")
        ]
        for query, algo in cases:
            got = engine.search(query, algo)
            ref = reference.search(
                query, algo, context=reference_context(reference, query))
            assert _wire(got) == _wire(ref), algo

    def test_synth_mall_cross_floor(self, mall):
        space, kindex = mall
        engine = IKRQEngine(space, kindex, door_matrix_eager=False)
        reference = build_reference_engine(space, kindex)
        rng = random.Random(21)
        iwords = sorted(kindex.iwords)
        twords = sorted(kindex.vocabulary.twords)
        pids = sorted(space.partitions)
        for algo in ("ToE", "KoE"):
            for _ in range(6):
                ps = space.partition(
                    rng.choice(pids)).footprint.random_interior_point(rng)
                pt = space.partition(
                    rng.choice(pids)).footprint.random_interior_point(rng)
                query = IKRQ(
                    ps=ps, pt=pt, delta=500.0,
                    keywords=(rng.choice(iwords), rng.choice(twords)),
                    k=3)
                got = engine.search(query, algo)
                ref = reference.search(
                    query, algo,
                    context=reference_context(reference, query))
                assert _wire(got) == _wire(ref), algo

    def test_reference_context_uses_set_algebra(self, fig1):
        reference = build_reference_engine(fig1.space, fig1.kindex)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte",), k=1)
        ctx = reference_context(reference, query)
        assert isinstance(ctx, QueryContext)
        assert isinstance(ctx.qk, DictQueryKeywords)
        assert not ctx._use_heads  # dict skeleton keeps the legacy path

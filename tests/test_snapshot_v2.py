"""Binary (v2) snapshots: round trips, backward compat, shard identity."""

from __future__ import annotations

import json

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.serve.snapshot import (BINARY_MAGIC, is_binary_snapshot,
                                  load_snapshot, read_snapshot,
                                  save_snapshot, snapshot_to_dict)
from repro.serve.pool import ShardDispatcher, ShardPool
from repro.serve.wire import answer_to_wire, canonical_json, query_to_wire


@pytest.fixture(scope="module")
def warm_engine(fig1):
    engine = IKRQEngine(fig1.space, fig1.kindex)
    engine.door_matrix()
    return engine


@pytest.fixture(scope="module")
def both_paths(warm_engine, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("snapv2")
    json_path = tmp / "snapshot.json"
    binary_path = tmp / "snapshot.bin"
    save_snapshot(json_path, warm_engine)
    save_snapshot(binary_path, warm_engine, binary=True)
    return str(json_path), str(binary_path)


def _normalise(doc):
    return json.loads(json.dumps(doc, sort_keys=True))


class TestBinaryRoundTrip:
    def test_magic_and_sniffing(self, both_paths):
        json_path, binary_path = both_paths
        assert is_binary_snapshot(binary_path)
        assert not is_binary_snapshot(json_path)
        with open(binary_path, "rb") as fh:
            assert fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC

    def test_binary_document_equals_json_document(self, warm_engine,
                                                  both_paths):
        json_path, binary_path = both_paths
        # read_snapshot normalises the binary container to the v1
        # document shape; it must equal the JSON encoding exactly.
        assert (_normalise(read_snapshot(binary_path))
                == _normalise(read_snapshot(json_path))
                == _normalise(snapshot_to_dict(warm_engine)))

    def test_engines_from_both_encodings_are_equal(self, warm_engine,
                                                   both_paths):
        json_path, binary_path = both_paths
        from_json = load_snapshot(json_path)
        from_binary = load_snapshot(binary_path)
        assert (from_binary.graph.csr_arrays()
                == from_json.graph.csr_arrays()
                == warm_engine.graph.csr_arrays())
        assert (from_binary.skeleton.export()
                == from_json.skeleton.export()
                == warm_engine.skeleton.export())
        assert (from_binary._matrix.warm_rows()
                == from_json._matrix.warm_rows()
                == warm_engine._matrix.warm_rows())

    def test_binary_load_skips_index_builds(self, both_paths):
        from repro.space.graph import DoorGraph
        from repro.space.skeleton import SkeletonIndex
        _, binary_path = both_paths
        csr_before = DoorGraph.csr_builds
        s2s_before = SkeletonIndex.s2s_builds
        load_snapshot(binary_path)
        assert DoorGraph.csr_builds == csr_before
        assert SkeletonIndex.s2s_builds == s2s_before

    def test_answers_byte_identical(self, fig1, warm_engine, both_paths):
        _, binary_path = both_paths
        loaded = load_snapshot(binary_path)
        for algo in ("ToE", "KoE", "KoE*"):
            query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                         keywords=("latte", "apple"), k=3)
            expected = canonical_json(
                answer_to_wire(warm_engine.search(query, algo)))
            got = canonical_json(answer_to_wire(loaded.search(query, algo)))
            assert got == expected, algo

    def test_v1_files_still_load(self, warm_engine, both_paths):
        json_path, _ = both_paths
        doc = read_snapshot(json_path)
        assert doc["version"] == 1
        loaded = load_snapshot(json_path)
        assert loaded.graph.csr_arrays() == warm_engine.graph.csr_arrays()

    def test_truncated_binary_rejected(self, both_paths, tmp_path):
        _, binary_path = both_paths
        data = open(binary_path, "rb").read()
        clipped = tmp_path / "clipped.bin"
        clipped.write_bytes(data[:len(data) - 64])
        with pytest.raises(ValueError, match="truncated"):
            read_snapshot(str(clipped))


class TestBinaryShardColdStart:
    def test_shard_pool_serves_binary_snapshot_identically(
            self, fig1, warm_engine, both_paths):
        _, binary_path = both_paths
        queries = [
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                 keywords=("latte", "apple"), k=3),
            IKRQ(ps=fig1.pt, pt=fig1.ps, delta=65.0,
                 keywords=("coffee",), k=2),
        ]
        with ShardPool(binary_path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            for query in queries:
                response = dispatcher.submit(query_to_wire(query), "ToE")
                assert response["status"] == "ok"
                expected = answer_to_wire(warm_engine.search(query, "ToE"))
                got = {"algorithm": response["algorithm"],
                       "routes": response["routes"]}
                assert canonical_json(got) == canonical_json(expected)

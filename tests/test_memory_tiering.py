"""Memory tiering: aligned snapshots, mmap loads, row spill, generation GC."""

from __future__ import annotations

import json
import os
import struct
import threading

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.core.engine import QueryService
from repro.serve.pool import ShardDispatcher, ShardPool
from repro.serve.registry import SnapshotRegistry
from repro.serve.snapshot import (BINARY_MAGIC, SNAPSHOT_ALIGN,
                                  load_snapshot, read_snapshot,
                                  save_snapshot)
from repro.serve.wire import answer_to_wire, canonical_json, query_to_wire
from repro.space.graph import DoorMatrix
from repro.space.rowcache import RowCacheFile


@pytest.fixture(scope="module")
def warm_engine(fig1):
    engine = IKRQEngine(fig1.space, fig1.kindex)
    engine.door_matrix()
    return engine


@pytest.fixture(scope="module")
def aligned_path(warm_engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("tiering") / "aligned.snap.bin"
    save_snapshot(path, warm_engine, binary=True)
    return str(path)


@pytest.fixture(scope="module")
def legacy_path(warm_engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("tiering") / "legacy.snap.bin"
    save_snapshot(path, warm_engine, binary=True, page_align=None)
    return str(path)


def _header(path):
    with open(path, "rb") as fh:
        assert fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC
        _, header_len = struct.unpack("<II", fh.read(8))
        return json.loads(fh.read(header_len).decode("utf-8")), header_len


# ----------------------------------------------------------------------
# The aligned (v2.1) layout
# ----------------------------------------------------------------------
class TestAlignedLayout:
    def test_sections_are_page_aligned(self, aligned_path):
        header, header_len = _header(aligned_path)
        assert header["align"] == SNAPSHOT_ALIGN
        payload_base = -(-(len(BINARY_MAGIC) + 8 + header_len)
                         // SNAPSHOT_ALIGN) * SNAPSHOT_ALIGN
        size = os.path.getsize(aligned_path)
        for name, typecode, count, offset in header["arrays"]:
            assert offset % SNAPSHOT_ALIGN == 0, name
            assert (payload_base + offset) % SNAPSHOT_ALIGN == 0, name
            assert payload_base + offset <= size

    def test_legacy_layout_has_no_offsets(self, legacy_path):
        header, _ = _header(legacy_path)
        assert "align" not in header
        assert all(len(entry) == 3 for entry in header["arrays"])

    def test_both_layouts_normalise_identically(self, aligned_path,
                                                legacy_path, warm_engine):
        norm = lambda doc: json.loads(json.dumps(doc, sort_keys=True))  # noqa: E731
        assert (norm(read_snapshot(aligned_path))
                == norm(read_snapshot(legacy_path)))

    def test_eager_loads_equal_across_layouts(self, aligned_path,
                                              legacy_path, warm_engine):
        a = load_snapshot(aligned_path)
        b = load_snapshot(legacy_path)
        assert (a.graph.csr_arrays() == b.graph.csr_arrays()
                == warm_engine.graph.csr_arrays())
        assert a._matrix.warm_rows() == b._matrix.warm_rows()

    def test_truncated_aligned_file_rejected(self, aligned_path, tmp_path):
        data = open(aligned_path, "rb").read()
        clipped = tmp_path / "clipped.bin"
        clipped.write_bytes(data[:len(data) - 64])
        with pytest.raises(ValueError, match="truncated"):
            read_snapshot(str(clipped))
        with pytest.raises(ValueError, match="truncated"):
            load_snapshot(str(clipped), mmap=True)


# ----------------------------------------------------------------------
# mmap loads
# ----------------------------------------------------------------------
class TestMmapLoad:
    def test_buffers_are_mapped_views(self, aligned_path):
        engine = load_snapshot(aligned_path, mmap=True)
        assert engine.mapped_bytes > 0
        graph = engine.graph
        for buf in (graph._door_ids, graph._indptr, graph._nbr,
                    graph._via, graph._wt, engine.skeleton._s2s):
            assert isinstance(buf, memoryview)
        breakdown = engine.memory_breakdown()
        assert breakdown["mapped_bytes"] > 0
        # Every CSR/skeleton buffer is mapped; heap holds at most
        # matrix rows faulted after load (none yet).
        assert breakdown["heap_bytes"] == 0

    def test_mmap_answers_bit_identical_to_eager(self, fig1, aligned_path):
        eager = load_snapshot(aligned_path)
        mapped = load_snapshot(aligned_path, mmap=True)
        assert mapped.graph.csr_arrays() == eager.graph.csr_arrays()
        assert mapped.skeleton.export() == eager.skeleton.export()
        assert mapped._matrix.warm_rows() == eager._matrix.warm_rows()
        for algo in ("ToE", "KoE", "KoE*"):
            query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                         keywords=("latte", "apple"), k=3)
            expected = canonical_json(
                answer_to_wire(eager.search(query, algo)))
            got = canonical_json(answer_to_wire(mapped.search(query, algo)))
            assert got == expected, algo

    def test_mmap_falls_back_on_legacy_layout(self, legacy_path):
        engine = load_snapshot(legacy_path, mmap=True)
        assert engine.mapped_bytes == 0
        assert not isinstance(engine.graph._wt, memoryview)

    def test_mmap_skips_index_builds(self, aligned_path):
        from repro.space.graph import DoorGraph
        from repro.space.skeleton import SkeletonIndex
        csr_before = DoorGraph.csr_builds
        s2s_before = SkeletonIndex.s2s_builds
        load_snapshot(aligned_path, mmap=True)
        assert DoorGraph.csr_builds == csr_before
        assert SkeletonIndex.s2s_builds == s2s_before


# ----------------------------------------------------------------------
# The spill tier
# ----------------------------------------------------------------------
class TestSpillTier:
    def test_row_cache_round_trip_is_byte_identical(self, fig1_engine,
                                                    tmp_path):
        graph = fig1_engine.graph
        cache = RowCacheFile(graph, tmp_path / "rows.cache")
        doors = sorted(fig1_engine.space.doors)[:4]
        for did in doors:
            tree = graph.dijkstra_tree(did)
            assert cache.store(did, tree)
            assert not cache.store(did, tree)  # pure rows: stored once
            faulted = cache.load(did)
            assert faulted.dist.tobytes() == tree.dist.tobytes()
            assert faulted.pred.tobytes() == tree.pred.tobytes()
            assert faulted.pred_via.tobytes() == tree.pred_via.tobytes()
            assert list(faulted.touched) == sorted(tree.touched)
        assert cache.load(10**9) is None
        assert len(cache) == len(doors)
        assert cache.nbytes == os.path.getsize(cache.path)
        cache.close()
        assert not os.path.exists(cache.path)

    def test_eviction_spills_and_faults_back(self, fig1_engine, tmp_path):
        graph = fig1_engine.graph
        matrix = DoorMatrix(graph, max_rows=2,
                            spill_path=tmp_path / "spill.rows")
        reference = DoorMatrix(graph)
        doors = sorted(fig1_engine.space.doors)
        for di in doors:
            for dj in doors[:2]:
                assert matrix.distance(di, dj) == reference.distance(di, dj)
                assert matrix.route(di, dj) == reference.route(di, dj)
        assert matrix.num_cached_rows() <= 2  # budget holds throughout
        assert matrix.evictions > 0
        assert matrix.spills > 0
        counters = matrix.memory_counters()
        assert counters["spilled_rows"] == len(matrix._spill)
        assert counters["spilled_bytes"] > 0
        # Revisit the coldest door: must fault from disk, not recompute.
        before_hits = matrix.spill_hits
        assert matrix.distance(doors[0], doors[1]) \
            == reference.distance(doors[0], doors[1])
        assert matrix.spill_hits == before_hits + 1

    def test_spill_counters_flow_into_service_stats(self, fig1, tmp_path):
        engine = IKRQEngine(fig1.space, fig1.kindex,
                            door_matrix_max_rows=2,
                            door_matrix_spill_path=str(tmp_path / "s.rows"))
        service = QueryService(engine, workers=1)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee", "apple"), k=2)
        service.search(query, "KoE*")
        service.search(query, "KoE*")
        snap = service.stats_snapshot()
        matrix = engine.door_matrix()
        assert snap.door_matrix_spills == matrix.spills > 0
        assert snap.door_matrix_spill_hits == matrix.spill_hits
        assert snap.door_matrix_spill_misses == matrix.spill_misses > 0

    def test_budgeted_mmap_load_spills_preloaded_rows(self, aligned_path,
                                                      tmp_path):
        engine = load_snapshot(aligned_path, mmap=True,
                               matrix_spill_path=str(tmp_path / "w.rows"),
                               matrix_max_rows=2)
        matrix = engine._matrix
        assert matrix.num_cached_rows() == 2
        assert matrix.spills > 0  # displaced warm rows went to disk
        eager = load_snapshot(aligned_path)
        doors = sorted(engine.space.doors)
        for did in matrix._spill.sources():
            assert matrix.distance(did, doors[0]) \
                == eager.door_matrix().distance(did, doors[0])


# ----------------------------------------------------------------------
# Generation GC
# ----------------------------------------------------------------------
class TestGenerationGC:
    def _registry_with_history(self, states):
        registry = SnapshotRegistry()
        gens = []
        for i, state in enumerate(states):
            gen = registry.add("mall", f"/snap/{i + 1}.bin")
            gen.state = state
            gens.append(gen)
        return registry, gens

    def test_collect_honours_keep_last(self):
        registry, gens = self._registry_with_history(
            ["retired", "retired", "retired", "active"])
        deleted = registry.collect("mall", keep_last=1)
        assert [g.generation for g in deleted] == [1, 2]
        assert [g.state for g in gens] == ["deleted", "deleted",
                                           "retired", "active"]
        assert all(g.deleted_unix is not None for g in deleted)
        # A second sweep finds nothing new.
        assert registry.collect("mall", keep_last=1) == []

    def test_collect_with_window_wider_than_history(self):
        # keep_last larger than the retired count must delete nothing
        # (a negative slice here once ate into the rollback window).
        registry, gens = self._registry_with_history(
            ["retired", "retired", "active"])
        assert registry.collect("mall", keep_last=3) == []
        assert [g.state for g in gens] == ["retired", "retired", "active"]

    def test_restore_retired_reoffers_after_failed_delete(self):
        registry, gens = self._registry_with_history(["retired", "active"])
        (doomed,) = registry.collect("mall", keep_last=0)
        assert doomed.state == "deleted"
        registry.restore_retired(doomed)
        assert doomed.state == "retired"
        assert doomed.deleted_unix is None
        # The next sweep offers it again.
        assert [g.generation
                for g in registry.collect("mall", keep_last=0)] == [1]

    def test_collect_never_touches_live_states(self):
        registry, gens = self._registry_with_history(
            ["retired", "draining", "active", "loading"])
        deleted = registry.collect("mall", keep_last=0)
        assert [g.generation for g in deleted] == [1]
        assert [g.state for g in gens] == ["deleted", "draining",
                                           "active", "loading"]

    def test_collect_skips_undrained_generations(self):
        registry, gens = self._registry_with_history(["retired", "active"])
        gens[0].in_flight = 1  # a drain that timed out
        assert registry.collect("mall", keep_last=0) == []
        gens[0].in_flight = 0
        assert [g.generation
                for g in registry.collect("mall", keep_last=0)] == [1]

    def test_collect_reaps_failed_generations(self):
        registry, gens = self._registry_with_history(
            ["retired", "failed", "active"])
        deleted = registry.collect("mall", keep_last=1)
        # Generation 1 is inside the rollback window; the failed one
        # never served and dies regardless of keep_last.
        assert [g.generation for g in deleted] == [2]

    def test_path_in_use_sees_all_venues(self):
        registry = SnapshotRegistry()
        a = registry.add("mall-a", "/snap/shared.bin")
        b = registry.add("mall-b", "/snap/shared.bin")
        a.state = "retired"
        b.state = "active"
        assert registry.path_in_use("/snap/shared.bin")
        registry.collect("mall-a", keep_last=0)
        assert registry.path_in_use("/snap/shared.bin")  # b still live
        b.state = "deleted"
        assert not registry.path_in_use("/snap/shared.bin")

    def test_ingest_deletes_retired_files(self, warm_engine, tmp_path):
        paths = []
        for i in range(4):
            path = tmp_path / f"gen{i}.snap.bin"
            save_snapshot(path, warm_engine, binary=True)
            paths.append(str(path))
        with ShardPool(paths[0], shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8,
                                         gc_keep_last=1)
            reports = [dispatcher.ingest("default", p) for p in paths[1:]]
        assert all(r["status"] == "ok" for r in reports)
        assert reports[0]["gc"] == []  # nothing beyond the window yet
        deleted = [d for r in reports for d in r["gc"]]
        assert [d["generation"] for d in deleted] == [1, 2]
        assert all(d["file_removed"] for d in deleted)
        survivors = [os.path.exists(p) for p in paths]
        assert survivors == [False, False, True, True]

    def test_failed_file_removal_defers_instead_of_orphaning(
            self, warm_engine, tmp_path):
        paths = []
        for i in range(2):
            path = tmp_path / f"gen{i}.snap.bin"
            save_snapshot(path, warm_engine, binary=True)
            paths.append(str(path))
        with ShardPool(paths[0], shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8,
                                         gc_keep_last=0)
            report = dispatcher.ingest("default", paths[1])
            assert report["status"] == "ok"
            # Make generation 1's path undeletable (os.remove on a
            # directory raises an OSError that is not FileNotFound).
            gen1 = dispatcher.registry._generations["default"][1]
            blocker = tmp_path / "blocker"
            blocker.mkdir()
            gen1.state = "retired"
            gen1.path = str(blocker)
            report = dispatcher.ingest("default", paths[1])
        (entry,) = [d for d in report["gc"] if d["generation"] == 1]
        assert entry["deferred"] and not entry["file_removed"]
        # Back to retired: the next sweep will retry, nothing orphaned.
        assert gen1.state == "retired"

    def test_gc_never_deletes_active_under_concurrent_ingest(
            self, fig1, warm_engine, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"gen{i}.snap.bin"
            save_snapshot(path, warm_engine, binary=True)
            paths.append(str(path))
        query_doc = query_to_wire(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=60.0,
            keywords=("latte",), k=1))
        failures = []
        stop = threading.Event()
        with ShardPool(paths[0], shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=16,
                                         gc_keep_last=0)

            def hammer():
                while not stop.is_set():
                    response = dispatcher.submit(query_doc, "ToE")
                    if response.get("status") != "ok":
                        failures.append(response)
                        return
                    active = dispatcher.registry.active("default")
                    if not os.path.exists(active.path):
                        failures.append(f"active file gone: {active.path}")
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                # The last swap re-ingests the file that is active at
                # that moment: the retired generation then shares its
                # path with the new active one, and GC must keep it.
                for path in (paths[1], paths[2], paths[2]):
                    report = dispatcher.ingest("default", path)
                    assert report["status"] == "ok"
            finally:
                stop.set()
                thread.join()
        assert failures == []
        # keep_last=0 deleted every retired generation's file except
        # the one the active generation still points at.
        assert not os.path.exists(paths[0])
        assert not os.path.exists(paths[1])
        assert os.path.exists(paths[2])


# ----------------------------------------------------------------------
# Memory reporting across the pool
# ----------------------------------------------------------------------
class TestMemoryReporting:
    def test_stats_broadcast_carries_memory_and_rss(self, aligned_path,
                                                    tmp_path):
        with ShardPool(aligned_path, shards=1,
                       service_options={
                           "mmap": True,
                           "matrix_spill_dir": str(tmp_path / "spill"),
                           "matrix_max_rows": 2}) as pool:
            docs = pool.stats()
        assert len(docs) == 1 and docs[0]["status"] == "ok"
        assert docs[0]["rss_bytes"] > 0
        entry = docs[0]["venue_stats"][0]
        memory = entry["memory"]
        assert memory["mapped_bytes"] > 0
        assert memory["spilled_rows"] > 0  # warm rows beyond the budget
        assert memory["matrix_resident_rows"] == 2
        stats = entry["stats"]
        assert stats["door_matrix_spills"] > 0

"""Tests for the prime table (Algorithms 3/4) and top-k collection."""

import pytest

from repro.core.prime import PrimeTable
from repro.core.results import RouteResult, TopKResults
from repro.core.route import Route
from repro.geometry import Point


def make_result(kp, distance, score, relevance=1.5):
    items = (Point(0, 0),) + tuple(range(1, max(2, int(distance) % 5 + 2))) \
        + (Point(9, 9),)
    route = Route(items=items, vias=(0,) * (len(items) - 1),
                  distance=distance, words=frozenset(),
                  sims=(0.5,), door_counts={}, kp=tuple(kp))
    return RouteResult(route=route, kp=tuple(kp),
                       relevance=relevance, score=score)


class TestPrimeTable:
    def test_check_empty_passes(self):
        t = PrimeTable()
        assert t.check(5, (1, 2), 10.0)

    def test_update_then_shorter_passes(self):
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert t.check(5, (1, 2), 8.0)

    def test_update_then_longer_fails(self):
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert not t.check(5, (1, 2), 12.0)

    def test_equal_distance_passes(self):
        """A stamp re-checked at pop sees its own record (Algorithm 3
        must not prune it)."""
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert t.check(5, (1, 2), 10.0)

    def test_update_keeps_minimum(self):
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert t.update(5, (1, 2), 7.0)
        assert not t.update(5, (1, 2), 9.0)
        assert t.best(5, (1, 2)) == 7.0

    def test_different_tails_are_different_classes(self):
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert t.check(6, (1, 2), 50.0)

    def test_different_kp_are_different_classes(self):
        t = PrimeTable()
        t.update(5, (1, 2), 10.0)
        assert t.check(5, (1, 2, 3), 50.0)

    def test_point_tail_key(self):
        t = PrimeTable()
        p = Point(1, 1)
        t.update(p, (1,), 5.0)
        assert not t.check(Point(2, 2), (1,), 9.0)  # points share key -1

    def test_counters(self):
        t = PrimeTable()
        t.update(5, (1,), 10.0)
        t.check(5, (1,), 12.0)
        t.check(5, (1,), 9.0)
        assert t.checks == 2
        assert t.rejections == 1

    def test_len_and_bytes(self):
        t = PrimeTable()
        t.update(1, (1,), 1.0)
        t.update(2, (1, 2), 1.0)
        assert len(t) == 2
        assert t.estimated_bytes() > 0


class TestTopKResults:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKResults(0)

    def test_insert_and_rank(self):
        tk = TopKResults(2)
        tk.add(make_result((1, 9), 10.0, 0.5))
        tk.add(make_result((1, 2, 9), 12.0, 0.8))
        tk.add(make_result((1, 3, 9), 14.0, 0.3))
        top = tk.top()
        assert [r.score for r in top] == [0.8, 0.5]

    def test_prime_replacement_prefers_shorter(self):
        """Within a class the shorter route wins even at lower score."""
        tk = TopKResults(3)
        tk.add(make_result((1, 9), 20.0, 0.9))
        tk.add(make_result((1, 9), 15.0, 0.7))
        top = tk.top()
        assert len(top) == 1
        assert top[0].distance == 15.0
        assert tk.replaced == 1

    def test_longer_homogeneous_rejected(self):
        tk = TopKResults(3)
        tk.add(make_result((1, 9), 15.0, 0.7))
        assert not tk.add(make_result((1, 9), 20.0, 0.9))
        assert tk.top()[0].distance == 15.0

    def test_kbound_zero_until_k_classes(self):
        tk = TopKResults(3)
        tk.add(make_result((1, 9), 10.0, 0.9))
        tk.add(make_result((2, 9), 10.0, 0.8))
        assert tk.kbound == 0.0
        tk.add(make_result((3, 9), 10.0, 0.7))
        assert tk.kbound == 0.7

    def test_kbound_tracks_kth_best(self):
        tk = TopKResults(2)
        for i, score in enumerate((0.5, 0.6, 0.9)):
            tk.add(make_result((i, 9), 10.0, score))
        assert tk.kbound == 0.6

    def test_kbound_can_decrease_on_replacement(self):
        tk = TopKResults(1)
        tk.add(make_result((1, 9), 20.0, 0.9))
        assert tk.kbound == 0.9
        tk.add(make_result((1, 9), 10.0, 0.4))
        assert tk.kbound == 0.4

    def test_no_dedup_mode_keeps_homogeneous(self):
        tk = TopKResults(5, deduplicate=False)
        tk.add(make_result((1, 9), 10.0, 0.9))
        tk.add(make_result((1, 9), 12.0, 0.8))
        assert len(tk.top()) == 2

    def test_homogeneous_rate(self):
        tk = TopKResults(3, deduplicate=False)
        tk.add(make_result((1, 9), 10.0, 0.9))
        tk.add(make_result((1, 9), 12.0, 0.8))
        tk.add(make_result((2, 9), 12.0, 0.7))
        assert tk.homogeneous_rate() == pytest.approx(2 / 3)

    def test_homogeneous_rate_zero_with_dedup(self):
        tk = TopKResults(3)
        tk.add(make_result((1, 9), 10.0, 0.9))
        tk.add(make_result((2, 9), 12.0, 0.8))
        assert tk.homogeneous_rate() == 0.0

    def test_empty(self):
        tk = TopKResults(3)
        assert tk.top() == []
        assert tk.kbound == 0.0
        assert tk.homogeneous_rate() == 0.0

    def test_tie_break_by_distance(self):
        tk = TopKResults(2)
        tk.add(make_result((1, 9), 20.0, 0.5))
        tk.add(make_result((2, 9), 10.0, 0.5))
        assert tk.top()[0].distance == 10.0

"""The observability subsystem: span trees, sampling policy, the trace
ring, structured JSON-lines logging, the engine stage probe, and the
traced path through the sharded dispatcher."""

from __future__ import annotations

import io
import json
import logging
import random
import threading
import time

import pytest

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.obs import (STAGES, EngineTrace, JsonLinesFormatter, TraceBuffer,
                       TracePolicy, TraceRecorder, format_trace, iter_spans,
                       log_event, new_trace_id, setup_serve_logging,
                       shift_spans, span_doc)


# ----------------------------------------------------------------------
# Span documents
# ----------------------------------------------------------------------
class TestSpanDocs:
    def test_span_doc_rounds_and_nests(self):
        child = span_doc("engine", 1.23456, 7.89012, note="x")
        parent = span_doc("shard_dispatch", 0.0, 10.0, children=[child])
        assert child["start_ms"] == 1.235
        assert child["duration_ms"] == 7.89
        assert child["annotations"] == {"note": "x"}
        assert parent["children"] == [child]

    def test_shift_spans_is_recursive(self):
        spans = [span_doc("queue_wait", 0.0, 2.0,
                          children=[span_doc("engine", 0.5, 1.0)])]
        shifted = shift_spans(spans, 10.0)
        assert shifted[0]["start_ms"] == 10.0
        assert shifted[0]["children"][0]["start_ms"] == 10.5

    def test_iter_spans_walks_children(self):
        spans = [span_doc("a", 0.0, 1.0,
                          children=[span_doc("b", 0.0, 0.5)]),
                 span_doc("c", 1.0, 1.0)]
        assert [s["name"] for s in iter_spans(spans)] == ["a", "b", "c"]

    def test_trace_ids_are_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_nesting_follows_with_blocks(self):
        rec = TraceRecorder()
        with rec.span("admission", decision="admitted"):
            pass
        with rec.span("shard_dispatch") as outer:
            with rec.span("engine"):
                time.sleep(0.001)
        doc = rec.finish("ok", venue="default")
        names = [s["name"] for s in doc["spans"]]
        assert names == ["admission", "shard_dispatch"]
        dispatch = doc["spans"][1]
        assert [c["name"] for c in dispatch["children"]] == ["engine"]
        assert dispatch["duration_ms"] >= dispatch["children"][0][
            "duration_ms"]
        assert doc["venue"] == "default"
        assert doc["status"] == "ok" and doc["trace_id"] == rec.trace_id
        assert outer["name"] == "shard_dispatch"

    def test_attach_grafts_under_open_span(self):
        rec = TraceRecorder()
        worker = [span_doc("queue_wait", 0.0, 1.5)]
        with rec.span("shard_dispatch") as frame:
            rec.attach(shift_spans(worker, frame["start_ms"]))
        doc = rec.finish("ok")
        children = doc["spans"][0]["children"]
        assert [c["name"] for c in children] == ["queue_wait"]

    def test_annotations_land_on_the_document(self):
        rec = TraceRecorder()
        rec.annotate(algorithm="ToE", shard=1)
        doc = rec.finish("ok")
        assert doc["algorithm"] == "ToE" and doc["shard"] == 1


# ----------------------------------------------------------------------
# Engine stage split
# ----------------------------------------------------------------------
class TestEngineTrace:
    def test_coarse_trace_has_no_stage_spans(self):
        trace = EngineTrace(fine=False)
        assert trace.stage_spans(0.0, 10.0) == []

    def test_fine_spans_cover_the_engine_window(self):
        trace = EngineTrace(fine=True)
        trace.stages["relaxation"] = 0.004
        trace.stages["lower_bound"] = 0.001
        spans = trace.stage_spans(100.0, 10.0)
        assert [s["name"] for s in spans] == ["relaxation", "lower_bound",
                                              "merge"]
        assert spans[0]["start_ms"] == 100.0
        assert spans[1]["start_ms"] == 104.0
        assert spans[2]["duration_ms"] == pytest.approx(5.0, abs=0.01)
        assert sum(s["duration_ms"] for s in spans) == pytest.approx(
            10.0, abs=0.01)

    def test_merge_residual_never_negative(self):
        trace = EngineTrace(fine=True)
        # Probe overhead can make measured stages exceed the window.
        trace.stages["relaxation"] = 0.020
        spans = trace.stage_spans(0.0, 10.0)
        assert spans[-1]["name"] == "merge"
        assert spans[-1]["duration_ms"] == 0.0


# ----------------------------------------------------------------------
# Sampling / retention policy
# ----------------------------------------------------------------------
class TestTracePolicy:
    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            TracePolicy(sample_rate=1.5)
        with pytest.raises(ValueError):
            TracePolicy(sample_rate=-0.1)

    def test_sample_extremes(self):
        assert not any(TracePolicy(sample_rate=0.0).sample()
                       for _ in range(50))
        assert all(TracePolicy(sample_rate=1.0).sample()
                   for _ in range(50))

    def test_sample_rate_is_probabilistic(self):
        policy = TracePolicy(sample_rate=0.5, rng=random.Random(7))
        hits = sum(policy.sample() for _ in range(2000))
        assert 800 < hits < 1200

    def test_keep_reason_precedence(self):
        policy = TracePolicy(sample_rate=0.0, slow_ms=100.0)
        assert policy.keep_reason("overloaded", 0.0, sampled=True,
                                  forced=True) == "forced"
        assert policy.keep_reason("overloaded", 500.0,
                                  sampled=True) == "shed"
        assert policy.keep_reason("error", 500.0, sampled=True) == "error"
        assert policy.keep_reason("ok", 500.0, sampled=True) == "slow"
        assert policy.keep_reason("ok", 5.0, sampled=True) == "sampled"
        assert policy.keep_reason("ok", 5.0, sampled=False) is None

    def test_slow_threshold_disabled_at_zero(self):
        policy = TracePolicy(slow_ms=0.0)
        assert not policy.is_slow(10_000.0)
        assert TracePolicy(slow_ms=1.0).is_slow(1.0)


# ----------------------------------------------------------------------
# Trace ring
# ----------------------------------------------------------------------
class TestTraceBuffer:
    def _doc(self, i, venue="default"):
        return {"trace_id": f"t{i:04d}", "status": "ok", "venue": venue,
                "duration_ms": float(i), "ts": float(i), "spans": []}

    def test_evicts_oldest_beyond_capacity(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.add(self._doc(i))
        assert len(buf) == 3
        assert buf.get("t0000") is None and buf.get("t0001") is None
        assert buf.get("t0004")["duration_ms"] == 4.0

    def test_recent_is_newest_first_and_filters_venue(self):
        buf = TraceBuffer(capacity=8)
        for i in range(4):
            buf.add(self._doc(i, venue="mall" if i % 2 else "airport"))
        listing = buf.recent(limit=10)
        assert [d["trace_id"] for d in listing] == [
            "t0003", "t0002", "t0001", "t0000"]
        mall = buf.recent(limit=10, venue="mall")
        assert [d["trace_id"] for d in mall] == ["t0003", "t0001"]
        # Summaries carry no span payload.
        assert all("spans" not in d for d in listing)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_concurrent_adds_respect_capacity(self):
        buf = TraceBuffer(capacity=16)

        def pound(base):
            for i in range(200):
                buf.add({"trace_id": f"{base}-{i}", "status": "ok",
                         "ts": 0.0, "duration_ms": 0.0, "spans": []})

        threads = [threading.Thread(target=pound, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(buf) == 16


# ----------------------------------------------------------------------
# CLI rendering
# ----------------------------------------------------------------------
class TestFormatTrace:
    def test_renders_header_and_tree(self):
        rec = TraceRecorder()
        with rec.span("shard_dispatch"):
            with rec.span("engine", answer_cache="miss"):
                pass
        doc = rec.finish("ok", venue="default", reason="slow", slow=True)
        text = format_trace(doc)
        assert f"trace {doc['trace_id']}" in text
        assert "venue=default" in text and "slow" in text
        assert "└─ shard_dispatch" in text
        assert "└─ engine" in text and "answer_cache=miss" in text


# ----------------------------------------------------------------------
# Structured JSON-lines logging
# ----------------------------------------------------------------------
class TestJsonLogging:
    def test_log_event_renders_one_json_object(self):
        stream = io.StringIO()
        logger = setup_serve_logging(stream=stream)
        try:
            log_event(logging.getLogger("repro.serve"), logging.WARNING,
                      "slow_query", trace_id="abc", duration_ms=12.5)
        finally:
            logger.handlers.clear()
        doc = json.loads(stream.getvalue().strip())
        assert doc["event"] == "slow_query"
        assert doc["trace_id"] == "abc" and doc["duration_ms"] == 12.5
        assert doc["level"] == "WARNING"
        assert doc["logger"] == "repro.serve"

    def test_setup_is_idempotent(self):
        stream = io.StringIO()
        logger = setup_serve_logging(stream=stream)
        try:
            setup_serve_logging(stream=stream)
            marked = [h for h in logger.handlers
                      if getattr(h, "_repro_obs_handler", False)]
            assert len(marked) == 1
        finally:
            logger.handlers.clear()

    def test_plain_records_still_format(self):
        record = logging.LogRecord("repro.serve", logging.INFO, __file__,
                                   1, "venue %s ready", ("mall",), None)
        doc = json.loads(JsonLinesFormatter().format(record))
        assert doc["event"] == "venue mall ready"

    def test_level_guard_skips_disabled_events(self):
        stream = io.StringIO()
        logger = setup_serve_logging(level=logging.WARNING, stream=stream)
        try:
            log_event(logging.getLogger("repro.serve"), logging.DEBUG,
                      "noisy")
        finally:
            logger.handlers.clear()
        assert stream.getvalue() == ""


# ----------------------------------------------------------------------
# The engine stage probe + the traced QueryService path
# ----------------------------------------------------------------------
class TestTracedSearch:
    def test_probe_only_observes(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        bare = fig1_engine.search(query, "ToE")
        trace = EngineTrace(fine=True)
        ctx = fig1_engine.context(query)
        ctx.attach_stage_probe(trace.stages)
        probed = fig1_engine.search(query, "ToE", context=ctx)
        from repro.serve import answer_to_wire, canonical_json
        assert canonical_json(answer_to_wire(probed)) \
            == canonical_json(answer_to_wire(bare))
        assert set(trace.stages) <= {"relaxation", "lower_bound"}
        assert trace.stages.get("relaxation", 0.0) > 0.0

    def test_service_annotates_cache_outcome_and_counters(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        service = QueryService(engine, workers=1)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee",), k=2)
        miss = EngineTrace(fine=True)
        service.search(query, "ToE", trace=miss)
        assert miss.annotations["answer_cache"] == "miss"
        assert miss.annotations["expansions"] > 0
        assert miss.stages.get("relaxation", 0.0) > 0.0
        hit = EngineTrace(fine=True)
        service.search(query, "ToE", trace=hit)
        assert hit.annotations["answer_cache"] == "hit"
        assert hit.stages == {}
        totals = service.search_counters()
        assert set(totals) == set(QueryService.SEARCH_COUNTERS)
        assert totals["expansions"] == miss.annotations["expansions"]


# ----------------------------------------------------------------------
# Dispatcher-level tracing over the process pool
# ----------------------------------------------------------------------
class TestDispatcherTracing:
    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        from repro.datasets import paper_fig1
        from repro.serve import save_snapshot
        fixture = paper_fig1()
        engine = IKRQEngine(fixture.space, fixture.kindex)
        path = tmp_path_factory.mktemp("obs") / "fig1.snapshot.json"
        save_snapshot(path, engine)
        return str(path)

    def test_forced_trace_round_trips_the_worker(self, snapshot_path,
                                                 fig1):
        from repro.serve import (MetricsRegistry, ShardDispatcher,
                                 ShardPool, query_to_wire)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        with ShardPool(snapshot_path, shards=1) as pool:
            dispatcher = ShardDispatcher(
                pool, max_pending=4, metrics=MetricsRegistry(),
                trace_policy=TracePolicy(sample_rate=0.0, slow_ms=0.0))
            response = dispatcher.submit(query_to_wire(query), "ToE",
                                         trace=True)
            assert response["status"] == "ok"
            doc = dispatcher.trace_buffer.get(response["trace_id"])
            assert doc is not None and doc["reason"] == "forced"
            names = {s["name"] for s in iter_spans(doc["spans"])}
            assert set(STAGES) <= names
            top = sum(s["duration_ms"] for s in doc["spans"])
            assert top <= doc["duration_ms"] + 0.001
            # Every stage fed the per-stage latency histogram.
            metrics = dispatcher.metrics.render()
            for stage in STAGES:
                assert (f'ikrq_stage_latency_seconds_bucket{{'
                        f'stage="{stage}",venue="default",le="+Inf"}}'
                        in metrics)

    def test_unsampled_ok_request_is_not_retained(self, snapshot_path,
                                                  fig1):
        from repro.serve import ShardDispatcher, ShardPool, query_to_wire
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee",), k=1)
        with ShardPool(snapshot_path, shards=1) as pool:
            dispatcher = ShardDispatcher(
                pool, max_pending=4,
                trace_policy=TracePolicy(sample_rate=0.0, slow_ms=0.0))
            response = dispatcher.submit(query_to_wire(query), "ToE")
            assert response["status"] == "ok"
            # The id is stamped (joinable in logs) but nothing retained.
            assert response["trace_id"]
            assert dispatcher.trace_buffer.get(response["trace_id"]) is None
            assert len(dispatcher.trace_buffer) == 0

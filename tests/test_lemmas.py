"""Direct verification of the paper's Lemmas 1–3 on the Fig. 1 venue."""

import math

import pytest

from repro.core import IKRQ


def enumerate_partial_minima(ctx, delta):
    """Exhaustively enumerate regular partial routes from ps and record
    the minimum distance per homogeneity class ``(tail, KP)``."""
    minima = {}

    def visit(route, partition):
        key = (route.tail if isinstance(route.tail, int) else -1, route.kp)
        prev = minima.get(key, math.inf)
        if route.distance >= prev:
            # A shorter homogeneous partial was already seen; any
            # extension is dominated too (Lemma 1's contrapositive),
            # but distinct longer partials may still branch — keep
            # exploring only if strictly new ground.
            if route.distance > prev:
                return
        else:
            minima[key] = route.distance
        for door in ctx.space.p2d_leave(partition):
            if not route.may_append_door(door):
                continue
            nxt = ctx.extend_to_door(route, door, via=partition)
            if nxt is None or nxt.distance > delta:
                continue
            for vj in ctx.space.d2p_enter(door) - {partition}:
                visit(nxt, vj)

    visit(ctx.start_route(), ctx.v_ps)
    return minima


class TestLemma1PrefixPrimality:
    """Every prefix of a returned prime route is a prime partial."""

    @pytest.mark.parametrize("keywords,delta", [
        (("latte", "apple"), 60.0),
        (("oppo", "costa"), 70.0),
        (("earphone",), 80.0),
    ])
    def test_prefixes_are_prime(self, fig1, fig1_engine, keywords, delta):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=delta,
                     keywords=keywords, k=4, alpha=0.5)
        ctx = fig1_engine.context(query)
        minima = enumerate_partial_minima(ctx, delta)
        answer = fig1_engine.search(query, "ToE")
        assert answer.routes
        for result in answer.routes:
            route = result.route
            # Rebuild every door-ending prefix and check class minima.
            prefix = ctx.start_route()
            partition = ctx.v_ps
            for i, item in enumerate(route.items[1:-1], start=1):
                via = route.vias[i - 1]
                prefix = ctx.extend_to_door(prefix, item, via=via)
                key = (item, prefix.kp)
                best = minima.get(key)
                assert best is not None
                assert prefix.distance <= best + 1e-6, (
                    f"prefix ending at d{item} is not prime "
                    f"({prefix.distance:.2f} > {best:.2f})")
                partition = via


class TestLemma2LoopCoverage:
    def test_returned_loops_enter_keyword_partitions(self, fig1,
                                                     fig1_engine):
        query = IKRQ(ps=fig1.points["p1"], pt=fig1.pt, delta=200.0,
                     keywords=("apple", "latte"), k=6, alpha=0.7)
        ctx = fig1_engine.context(query)
        answer = fig1_engine.search(query, "ToE")
        for result in answer.routes:
            doors = result.route.doors
            vias = result.route.vias
            for i in range(1, len(doors)):
                if doors[i] == doors[i - 1]:
                    # The via of the loop segment is the partition the
                    # loop wanders in; it must cover a query keyword.
                    item_positions = [j for j, x in enumerate(
                        result.route.items) if x == doors[i]]
                    loop_via = result.route.vias[item_positions[1] - 1]
                    assert ctx.is_keyword_partition(loop_via)


class TestLemma3ShortestConnections:
    def test_koe_segments_are_shortest_regular(self, fig1, fig1_engine):
        """Between consecutive key partitions a KoE route uses the
        shortest regular connection (Lemma 3): replacing any segment
        by a shorter regular alternative would contradict primality,
        so KoE's distance must match ToE's for shared classes."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=5, alpha=0.5)
        toe = {r.kp: r.distance
               for r in fig1_engine.search(query, "ToE").routes}
        koe = fig1_engine.search(query, "KoE")
        for result in koe.routes:
            if result.kp in toe:
                assert result.distance == pytest.approx(
                    toe[result.kp], abs=1e-6)

"""Tests for vocabulary, mappings and candidate i-word matching."""

import pytest

from repro.keywords import (
    KeywordIndex,
    QueryKeywords,
    Vocabulary,
    candidate_iword_set,
)


class TestVocabulary:
    def test_disjoint_sets(self):
        v = Vocabulary()
        v.add_tword("coffee")
        v.add_iword("coffee")  # promotes to i-word, evicted from Wt
        assert v.is_iword("coffee")
        assert not v.is_tword("coffee")

    def test_tword_not_added_when_iword_exists(self):
        v = Vocabulary(iwords=["zara"])
        v.add_tword("zara")
        assert not v.is_tword("zara")

    def test_normalisation(self):
        v = Vocabulary()
        v.add_iword("  Starbucks ")
        assert v.is_iword("STARBUCKS")
        assert "starbucks" in v

    def test_empty_word_rejected(self):
        v = Vocabulary()
        with pytest.raises(ValueError):
            v.add_iword("   ")
        with pytest.raises(ValueError):
            v.add_tword("")

    def test_counts_and_iter(self):
        v = Vocabulary(iwords=["a", "b"], twords=["x", "y", "z"])
        assert v.num_iwords == 2
        assert v.num_twords == 3
        assert len(v) == 5
        assert set(v) == {"a", "b", "x", "y", "z"}

    def test_copies_returned(self):
        v = Vocabulary(iwords=["a"])
        v.iwords.add("mutated")
        assert not v.is_iword("mutated")


class TestKeywordIndex:
    @pytest.fixture
    def index(self):
        idx = KeywordIndex()
        idx.assign_iword(3, "costa")
        idx.assign_iword(10, "apple")
        idx.assign_iword(7, "starbucks")
        idx.assign_iword(12, "samsung")
        idx.add_twords("costa", ["coffee", "drinks", "macha"])
        idx.add_twords("apple", ["phone", "mac", "laptop", "watch"])
        idx.add_twords("starbucks", ["coffee", "macha", "latte", "drinks"])
        idx.add_twords("samsung", ["phone", "laptop", "earphone"])
        return idx

    def test_p2i_is_function(self, index):
        assert index.p2i(3) == "costa"
        with pytest.raises(ValueError):
            index.assign_iword(3, "other")

    def test_p2i_reassign_same_ok(self, index):
        assert index.assign_iword(3, "costa") == "costa"

    def test_i2p_one_to_many(self, index):
        index.assign_iword(99, "costa")
        assert index.i2p("costa") == frozenset({3, 99})

    def test_i2t_t2i_roundtrip(self, index):
        assert "coffee" in index.i2t("costa")
        assert index.t2i("coffee") == frozenset({"costa", "starbucks"})

    def test_unknown_lookups_empty(self, index):
        assert index.p2i(999) is None
        assert index.i2p("nothing") == frozenset()
        assert index.i2t("nothing") == frozenset()
        assert index.t2i("nothing") == frozenset()

    def test_partition_words(self, index):
        pw = index.partition_words(3)
        assert pw.iword == "costa"
        assert pw.twords == frozenset({"coffee", "drinks", "macha"})
        assert pw.wi == frozenset({"costa"})

    def test_partition_words_unlabelled(self, index):
        pw = index.partition_words(55)
        assert pw.iword is None
        assert pw.wi == frozenset()

    def test_partition_words_cache_invalidation(self, index):
        before = index.partition_words(3).twords
        index.add_tword("costa", "espresso")
        after = index.partition_words(3).twords
        assert "espresso" in after and "espresso" not in before

    def test_iword_not_allowed_as_tword(self, index):
        index.add_tword("costa", "apple")  # apple is an i-word
        assert "apple" not in index.i2t("costa")

    def test_i2p_many(self, index):
        assert index.i2p_many(["costa", "apple"]) == frozenset({3, 10})

    def test_stats(self, index):
        stats = index.stats()
        assert stats["num_iwords"] == 4
        assert stats["num_labelled_partitions"] == 4
        assert stats["max_twords_per_iword"] == 4

    def test_estimated_bytes_positive(self, index):
        assert index.estimated_bytes() > 0


class TestCandidateIWordSet:
    """Definition 4, validated against the paper's Example 4."""

    @pytest.fixture
    def index(self):
        idx = KeywordIndex()
        idx.assign_iword(3, "costa")
        idx.assign_iword(10, "apple")
        idx.assign_iword(7, "starbucks")
        idx.assign_iword(12, "samsung")
        idx.add_twords("costa", ["coffee", "drinks", "macha"])
        idx.add_twords("apple", ["phone", "mac", "laptop", "watch"])
        idx.add_twords("starbucks", ["coffee", "macha", "latte", "drinks"])
        idx.add_twords("samsung", ["phone", "laptop", "earphone"])
        return idx

    def test_example4_latte(self, index):
        """κ(latte) = {(starbucks, 1), (costa, 0.75)} at τ = 0.5."""
        entries = candidate_iword_set(index, "latte", tau=0.5)
        assert [(e.iword, round(e.similarity, 4)) for e in entries] == [
            ("starbucks", 1.0), ("costa", 0.75)]

    def test_example4_apple_is_iword(self, index):
        entries = candidate_iword_set(index, "apple", tau=0.5)
        assert [(e.iword, e.similarity) for e in entries] == [("apple", 1.0)]

    def test_zero_similarity_excluded(self, index):
        """s(apple) = s(samsung) = 0 for latte (Example 4)."""
        entries = candidate_iword_set(index, "latte", tau=0.05)
        iwords = {e.iword for e in entries}
        assert "apple" not in iwords and "samsung" not in iwords

    def test_tau_threshold_strict(self, index):
        # costa's similarity is exactly 0.75; τ = 0.75 must drop it.
        entries = candidate_iword_set(index, "latte", tau=0.75)
        assert [e.iword for e in entries] == ["starbucks"]

    def test_unknown_word_empty(self, index):
        assert candidate_iword_set(index, "quinoa") == []

    def test_direct_flag(self, index):
        entries = candidate_iword_set(index, "latte", tau=0.5)
        assert entries[0].direct and not entries[1].direct

    def test_entry_unpacking(self, index):
        wi, s = candidate_iword_set(index, "apple")[0]
        assert (wi, s) == ("apple", 1.0)

    def test_indirect_matching_earphone(self, index):
        """§V-A5: earphone matches samsung directly, apple indirectly."""
        entries = candidate_iword_set(index, "earphone", tau=0.1)
        by_name = {e.iword: e for e in entries}
        assert by_name["samsung"].similarity == 1.0
        assert by_name["samsung"].direct
        # Jaccard: |{phone, laptop}| / |{phone, mac, laptop, watch,
        # earphone}| = 2/5 (Definition 4's formula; see DESIGN.md for
        # the paper's worked example using overlap/|U| = 2/3 instead).
        assert by_name["apple"].similarity == pytest.approx(0.4)


class TestQueryKeywords:
    @pytest.fixture
    def index(self):
        idx = KeywordIndex()
        idx.assign_iword(3, "costa")
        idx.assign_iword(10, "apple")
        idx.assign_iword(7, "starbucks")
        idx.add_twords("costa", ["coffee", "drinks", "macha"])
        idx.add_twords("apple", ["phone", "mac", "laptop", "watch"])
        idx.add_twords("starbucks", ["coffee", "macha", "latte", "drinks"])
        return idx

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            QueryKeywords(index, [])

    def test_candidate_sets_per_word(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.candidate_iwords(0) == {"starbucks", "costa"}
        assert qk.candidate_iwords(1) == {"apple"}
        assert qk.all_candidate_iwords == {"starbucks", "costa", "apple"}

    def test_keyword_partitions(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.keyword_partitions == frozenset({3, 7, 10})

    def test_example6_relevance_r1(self, index):
        """ρ(R1) = 1 + 0.75/1 = 1.75 for RW = {zara, oppo, costa}."""
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.relevance_of_iword_set(
            {"zara", "oppo", "costa"}) == pytest.approx(1.75)

    def test_example6_relevance_r2(self, index):
        """ρ(R2) = 2 + (1 + 1)/2 = 3 for RW = {apple, starbucks, costa}."""
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.relevance_of_iword_set(
            {"apple", "starbucks", "costa"}) == pytest.approx(3.0)

    def test_relevance_zero_when_uncovered(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.relevance_of_iword_set({"zara"}) == 0.0

    def test_relevance_range(self, index):
        """ρ ∈ 0 ∪ (1, |QW| + 1] (Definition 6)."""
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        for words in ({"costa"}, {"apple"}, {"starbucks", "apple"}):
            rho = qk.relevance_of_iword_set(words)
            assert rho == 0.0 or 1.0 < rho <= qk.max_relevance

    def test_max_relevance(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.max_relevance == 3.0

    def test_hits_for_iword(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.hits_for_iword("costa") == [(0, 0.75)]
        assert qk.hits_for_iword("unrelated") == []

    def test_relevance_from_sims_matches_wordset(self, index):
        qk = QueryKeywords(index, ["latte", "apple"], tau=0.5)
        assert qk.relevance_from_sims((0.75, 1.0)) == pytest.approx(
            qk.relevance_of_iword_set({"costa", "apple"}))

    def test_duplicate_query_words_allowed(self, index):
        qk = QueryKeywords(index, ["latte", "latte"], tau=0.5)
        assert len(qk) == 2
        # Covering one i-word covers both positions.
        assert qk.relevance_of_iword_set({"starbucks"}) == pytest.approx(3.0)

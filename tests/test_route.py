"""Tests for the Route model: regularity, relevance, extension."""

import pytest

from repro.core.route import Route
from repro.geometry import Point


def make_route(doors, start=None, sims=(0.0,)):
    """Assemble a route item-by-item with dummy vias/costs."""
    items = (start if start is not None else Point(0, 0),)
    route = Route(items=items, vias=(), distance=0.0,
                  words=frozenset(), sims=tuple(sims), door_counts={})
    for d in doors:
        route = route.extended(d, via=0, cost=1.0,
                               new_words=route.words,
                               new_sims=route.sims,
                               new_kp=route.kp)
    return route


class TestBasics:
    def test_head_tail(self):
        r = make_route([1, 2, 3])
        assert isinstance(r.head, Point)
        assert r.tail == 3
        assert r.tail_door == 3

    def test_tail_door_none_for_point(self):
        r = make_route([])
        assert r.tail_door is None

    def test_doors_subsequence(self):
        r = make_route([4, 5, 5])
        assert r.doors == (4, 5, 5)

    def test_distance_accumulates(self):
        r = make_route([1, 2, 3])
        assert r.distance == pytest.approx(3.0)

    def test_complete_detection(self):
        r = make_route([1, 2])
        assert not r.is_complete
        done = r.extended(Point(9, 9), via=0, cost=1.0,
                          new_words=r.words, new_sims=r.sims, new_kp=r.kp)
        assert done.is_complete

    def test_single_point_not_complete(self):
        assert not make_route([]).is_complete

    def test_counts(self):
        r = make_route([1, 2, 2])
        assert r.count(2) == 2
        assert r.count(1) == 1
        assert r.count(99) == 0
        assert r.contains_door(1)
        assert not r.contains_door(99)


class TestRegularity:
    """The paper's Principle of Regularity."""

    def test_fresh_door_allowed(self):
        assert make_route([1, 2]).may_append_door(3)

    def test_immediate_loop_allowed(self):
        assert make_route([1, 2]).may_append_door(2)

    def test_reappearance_with_gap_forbidden(self):
        # (d13, d14, d14, d13) from the paper: the final d13 is illegal.
        r = make_route([13, 14, 14])
        assert not r.may_append_door(13)

    def test_triple_forbidden(self):
        r = make_route([5, 5])
        assert not r.may_append_door(5)

    def test_is_regular_accepts_loop(self):
        assert make_route([1, 2, 2, 3]).is_regular()

    def test_is_regular_rejects_gap(self):
        r = make_route([13, 14, 14, 13])
        assert not r.is_regular()

    def test_is_regular_rejects_triple(self):
        assert not make_route([5, 5, 5]).is_regular()

    def test_empty_route_regular(self):
        assert make_route([]).is_regular()

    def test_incremental_matches_audit(self):
        """may_append_door must agree with the full audit."""
        import itertools
        for doors in itertools.product(range(3), repeat=4):
            route = make_route([])
            legal = True
            for d in doors:
                if not route.may_append_door(d):
                    legal = False
                    break
                route = route.extended(d, 0, 1.0, route.words,
                                       route.sims, route.kp)
            if legal:
                assert route.is_regular(), doors


class TestRelevance:
    def test_zero_when_uncovered(self):
        r = make_route([1], sims=(0.0, 0.0))
        assert r.covered_count == 0
        assert r.relevance == 0.0

    def test_definition6_formula(self):
        r = make_route([1], sims=(0.75, 0.0, 1.0))
        # covered = 2, ρ = 2 + (0.75 + 1.0)/2.
        assert r.covered_count == 2
        assert r.relevance == pytest.approx(2.875)

    def test_full_coverage(self):
        r = make_route([1], sims=(1.0, 1.0))
        assert r.relevance == pytest.approx(3.0)


class TestImmutability:
    def test_extension_does_not_mutate_parent(self):
        parent = make_route([1])
        child = parent.extended(2, 0, 1.0, parent.words,
                                parent.sims, parent.kp)
        assert parent.doors == (1,)
        assert child.doors == (1, 2)
        assert parent.door_counts == {1: 1}

    def test_describe_without_space(self):
        text = make_route([1, 2]).describe()
        assert "d1" in text and "d2" in text

"""The unified CSR Dijkstra against the seed dict-based implementations.

The seed repo carried three near-duplicate dict-of-lists Dijkstra
loops (single source, first-hop restricted, point attached).  They
were collapsed into one CSR engine; these tests keep verbatim copies
of the seed loops as *reference implementations* and assert the
unified engine returns identical ``(dist, pred)`` maps and identical
pred-walk routes on the fig1 and randomized synthetic venues, under
randomized banned sets, first-hop restrictions and bounds.

Determinism note: the CSR engine interns doors in ascending id order
and breaks heap ties by dense index, which equals the seed's door-id
tie-breaking — so even equal-length shortest-path trees must match
exactly, not just their distances.
"""

from __future__ import annotations

import heapq
import math
import random

import pytest

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.space import DoorGraph
from tests.conftest import random_small_space

INF = math.inf


# ----------------------------------------------------------------------
# Seed reference implementations (verbatim semantics of the pre-CSR
# DoorGraph; kept here as ground truth for the unified engine).
# ----------------------------------------------------------------------
def seed_adjacency(space):
    adj = {did: [] for did in space.doors}
    for pid in space.partitions:
        enterable = space.p2d_enter(pid)
        leaveable = space.p2d_leave(pid)
        for di in enterable:
            pos_i = space.door(di).position
            for dj in leaveable:
                if di == dj:
                    continue
                weight = pos_i.distance_to(space.door(dj).position)
                adj[di].append((dj, pid, weight))
    return adj


def seed_dijkstra(space, adj, source, banned=None, targets=None, bound=INF):
    banned = banned or frozenset()
    dist = {source: 0.0}
    pred = {}
    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining.discard(source)
    heap = [(0.0, source)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, via, w in adj[u]:
            if v in banned or v in settled:
                continue
            nd = d + w
            if nd > bound:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                pred[v] = (u, via)
                heapq.heappush(heap, (nd, v))
    return dist, pred


def seed_first_hop(space, adj, source, first_via, banned, targets, bound):
    banned = banned or frozenset()
    dist = {}
    pred = {}
    heap = []
    src_pos = space.door(source).position
    for dj in space.p2d_leave(first_via):
        if dj == source or dj in banned:
            continue
        w = src_pos.distance_to(space.door(dj).position)
        if w > bound:
            continue
        if w < dist.get(dj, INF):
            dist[dj] = w
            pred[dj] = (source, first_via)
            heapq.heappush(heap, (w, dj))
    remaining = set(targets) if targets is not None else None
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, via, w in adj[u]:
            if v in banned or v in settled or v == source:
                continue
            nd = d + w
            if nd > bound:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                pred[v] = (u, via)
                heapq.heappush(heap, (nd, v))
    return dist, pred


def seed_routes_from_point(space, adj, p, host_pid, targets, banned=None,
                           bound=INF):
    banned = banned or frozenset()
    dist = {}
    pred = {}
    heap = []
    for dj in space.p2d_leave(host_pid):
        if dj in banned:
            continue
        w = p.distance_to(space.door(dj).position)
        if w > bound:
            continue
        if w < dist.get(dj, INF):
            dist[dj] = w
            pred[dj] = (None, host_pid)
            heapq.heappush(heap, (w, dj))
    remaining = set(targets)
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        remaining.discard(u)
        if not remaining:
            break
        for v, via, w in adj[u]:
            if v in banned or v in settled:
                continue
            nd = d + w
            if nd > bound:
                continue
            if nd < dist.get(v, INF):
                dist[v] = nd
                pred[v] = (u, via)
                heapq.heappush(heap, (nd, v))
    routes = {}
    for target in targets:
        if target not in dist or dist[target] > bound:
            continue
        doors, vias, node = [], [], target
        while node is not None:
            prev, via = pred[node]
            doors.append(node)
            vias.append(via)
            node = prev
        doors.reverse()
        vias.reverse()
        routes[target] = (doors, vias, dist[target])
    return routes


def walk(pred, source, target):
    doors, vias, node = [], [], target
    while node != source:
        prev, via = pred[node]
        doors.append(node)
        vias.append(via)
        node = prev
    doors.reverse()
    vias.reverse()
    return doors, vias


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def spaces():
    from repro.datasets import paper_fig1
    out = [("fig1", paper_fig1().space)]
    for seed in range(6):
        space, _, _, _ = random_small_space(seed)
        out.append((f"synthetic{seed}", space))
    return out


@pytest.fixture(scope="module", params=spaces(), ids=lambda s: s[0])
def venue(request):
    name, space = request.param
    return space, DoorGraph(space), seed_adjacency(space)


def random_cases(space, rng, n=40):
    doors = sorted(space.doors)
    for _ in range(n):
        source = rng.choice(doors)
        banned = frozenset(rng.sample(doors, k=rng.randint(0, 3))) - {source}
        bound = rng.choice((INF, rng.uniform(5.0, 60.0)))
        targets = (None if rng.random() < 0.4 else
                   set(rng.sample(doors, k=rng.randint(1, 4))))
        yield source, banned, targets, bound


class TestSingleSourceEquivalence:
    def test_dist_and_pred_match_seed(self, venue):
        space, graph, adj = venue
        rng = random.Random(11)
        for source, banned, targets, bound in random_cases(space, rng):
            ref = seed_dijkstra(space, adj, source, banned,
                                set(targets) if targets else targets, bound)
            got = graph.dijkstra(source, banned=banned,
                                 targets=set(targets) if targets else None,
                                 bound=bound)
            assert got[0] == ref[0]
            assert got[1] == ref[1]

    def test_routes_match_seed_walks(self, venue):
        space, graph, adj = venue
        rng = random.Random(13)
        doors = sorted(space.doors)
        for _ in range(30):
            source, target = rng.choice(doors), rng.choice(doors)
            banned = frozenset(rng.sample(doors, k=rng.randint(0, 2))) - {source}
            dist, pred = seed_dijkstra(space, adj, source, banned,
                                       {target}, INF)
            got = graph.shortest_route(source, target, banned=banned)
            if target not in dist:
                assert got is None
                continue
            if source == target:
                assert got == ([], [], 0.0)
                continue
            doors_ref, vias_ref = walk(pred, source, target)
            assert got == (doors_ref, vias_ref, dist[target])


class TestFirstHopEquivalence:
    def test_multi_target_routes_match_seed(self, venue):
        space, graph, adj = venue
        rng = random.Random(17)
        doors = sorted(space.doors)
        for _ in range(40):
            source = rng.choice(doors)
            vias = sorted(space.d2p_leave(source))
            if not vias:
                continue
            first_via = rng.choice(vias)
            targets = set(rng.sample(doors, k=rng.randint(1, 5)))
            banned = frozenset(rng.sample(doors, k=rng.randint(0, 3)))
            bound = rng.choice((INF, rng.uniform(5.0, 60.0)))
            dist, pred = seed_first_hop(space, adj, source, first_via,
                                        banned, set(targets), bound)
            got = graph.multi_target_routes(source, first_via, targets,
                                            banned=banned, bound=bound)
            expected = {}
            for t in targets:
                if t in dist and dist[t] <= bound:
                    d_ref, v_ref = walk(pred, source, t)
                    expected[t] = (d_ref, v_ref, dist[t])
            assert got == expected


class TestPointAttachmentEquivalence:
    def test_routes_from_point_match_seed(self, venue):
        space, graph, adj = venue
        rng = random.Random(19)
        doors = sorted(space.doors)
        partitions = sorted(space.partitions)
        for _ in range(30):
            pid = rng.choice(partitions)
            p = space.partition(pid).footprint.random_interior_point(rng)
            host = space.host_partition(p).pid
            targets = set(rng.sample(doors, k=rng.randint(1, 4)))
            banned = frozenset(rng.sample(doors, k=rng.randint(0, 3)))
            bound = rng.choice((INF, rng.uniform(5.0, 60.0)))
            ref = seed_routes_from_point(space, adj, p, host, set(targets),
                                         banned, bound)
            got = graph.routes_from_point(p, host, targets,
                                          banned=banned, bound=bound)
            assert got == ref


class TestBatchMatchesSequential:
    """``QueryService.search_batch`` must equal bare sequential search."""

    @staticmethod
    def signatures(answers):
        return [[(tuple(repr(i) for i in r.route.items), r.route.vias,
                  r.distance, r.score) for r in a.routes] for a in answers]

    @pytest.mark.parametrize("algorithm", ["ToE", "KoE", "KoE*"])
    def test_fig1_batch_equals_sequential(self, fig1, algorithm):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        rng = random.Random(3)
        keyword_pool = [("coffee",), ("latte", "apple"), ("phone", "macha"),
                        ("shoes",), ("coffee", "laptop")]
        queries = [IKRQ(ps=fig1.ps, pt=fig1.pt,
                        delta=rng.uniform(50.0, 80.0),
                        keywords=keyword_pool[i % len(keyword_pool)],
                        k=rng.choice((1, 3)))
                   for i in range(10)]
        sequential = [engine.search(q, algorithm) for q in queries]
        service = QueryService(engine, workers=3)
        batched = service.search_batch(queries, algorithm)
        assert self.signatures(batched) == self.signatures(sequential)

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_random_venue_batch_equals_sequential(self, seed):
        space, kindex, ps, pt = random_small_space(seed)
        engine = IKRQEngine(space, kindex)
        rng = random.Random(seed + 50)
        iwords = sorted(kindex.iwords)
        queries = [IKRQ(ps=ps, pt=pt, delta=rng.uniform(45.0, 90.0),
                        keywords=(rng.choice(iwords),),
                        k=rng.choice((1, 2, 3)))
                   for _ in range(8)]
        sequential = [engine.search(q, "ToE") for q in queries]
        service = QueryService(engine, workers=2)
        batched = service.search_batch(queries, "ToE")
        assert self.signatures(batched) == self.signatures(sequential)

    def test_repeated_queries_hit_answer_cache(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee", "apple"), k=3)
        service = QueryService(engine, workers=1)
        stream = [query] * 5
        batched = service.search_batch(stream, "ToE")
        sequential = [engine.search(query, "ToE") for _ in stream]
        assert self.signatures(batched) == self.signatures(sequential)
        assert service.stats.answer_hits == 4
        assert service.stats.answer_misses == 1

"""Shared fixtures: the Fig. 1 venue, engines, and random small spaces."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core import IKRQEngine
from repro.datasets import paper_fig1
from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.space import IndoorSpaceBuilder, PartitionKind


@pytest.fixture(scope="session")
def fig1():
    """The paper's Fig. 1 fixture (immutable; session-scoped)."""
    return paper_fig1()


@pytest.fixture(scope="session")
def fig1_engine(fig1):
    return IKRQEngine(fig1.space, fig1.kindex)


# ----------------------------------------------------------------------
# Tiny hand-made spaces
# ----------------------------------------------------------------------
def make_corridor_space(rooms: int = 3):
    """A corridor of hallway cells with one room per cell.

    Layout (rooms on top, hallway below)::

        [room0][room1][room2]...
        [cell0][cell1][cell2]...

    Doors: room_i <-> cell_i, cell_i <-> cell_{i+1}.
    Returns (space, room_pids, cell_pids, builder).
    """
    b = IndoorSpaceBuilder()
    cells: List[int] = []
    room_ids: List[int] = []
    for i in range(rooms):
        room_ids.append(b.add_partition(
            f"room{i}", Rect(i * 10.0, 10.0, (i + 1) * 10.0, 20.0)))
        cells.append(b.add_partition(
            f"cell{i}", Rect(i * 10.0, 0.0, (i + 1) * 10.0, 10.0),
            PartitionKind.HALLWAY))
    for i in range(rooms):
        b.add_door(f"rd{i}", Point(i * 10.0 + 5.0, 10.0),
                   between=(f"room{i}", f"cell{i}"))
        if i > 0:
            b.add_door(f"cd{i}", Point(i * 10.0, 5.0),
                       between=(f"cell{i-1}", f"cell{i}"))
    return b.build(), room_ids, cells, b


@pytest.fixture
def corridor():
    return make_corridor_space(4)


def corridor_keywords(room_ids: List[int]) -> KeywordIndex:
    """Shops along the corridor: coffee / electronics themes."""
    index = KeywordIndex()
    data = [
        ("espressobar", ("coffee", "latte", "beans")),
        ("gadgetsine", ("phone", "laptop", "charger")),
        ("beanhouse", ("coffee", "beans", "mocha")),
        ("booknook", ("books", "maps", "pens")),
    ]
    for room, (iword, twords) in zip(room_ids, data):
        index.assign_iword(room, iword)
        index.add_twords(iword, twords)
    return index


# ----------------------------------------------------------------------
# Random small spaces for equivalence / property testing
# ----------------------------------------------------------------------
def random_small_space(seed: int,
                       n_rooms: int = 5) -> Tuple[object, KeywordIndex, Point, Point]:
    """A random corridor-with-branches venue plus keyword assignment.

    Small enough for the naive baseline to enumerate exhaustively,
    varied enough (dead ends, shared i-words, multi-door rooms) to
    exercise loops, prime classes and indirect matching.
    """
    rng = random.Random(seed)
    n_cells = rng.randint(3, 5)
    b = IndoorSpaceBuilder()
    cells = []
    for i in range(n_cells):
        cells.append(b.add_partition(
            f"cell{i}", Rect(i * 10.0, 0.0, (i + 1) * 10.0, 8.0),
            PartitionKind.HALLWAY))
        if i > 0:
            b.add_door(f"cd{i}", Point(i * 10.0, rng.uniform(2.0, 6.0)),
                       between=(cells[i - 1], cells[i]))
    rooms = []
    for i in range(n_rooms):
        cell = rng.randrange(n_cells)
        x0 = cell * 10.0 + rng.uniform(0.0, 4.0)
        room = b.add_partition(
            f"room{i}", Rect(x0, 8.0, x0 + 5.0, 14.0))
        rooms.append(room)
        b.add_door(f"rd{i}", Point(x0 + rng.uniform(0.5, 4.5), 8.0),
                   between=(room, cells[cell]))
        if rng.random() < 0.3:
            # A second door into the same or the next cell over.
            cell2 = min(cell + 1, n_cells - 1)
            if x0 + 4.0 >= cell2 * 10.0:
                b.add_door(f"rd{i}b", Point(x0 + 4.5, 8.0),
                           between=(room, cells[cell2]))
    space = b.build()

    index = KeywordIndex()
    vocab = ["coffee", "latte", "beans", "phone", "laptop",
             "books", "maps", "mocha", "tea", "cake"]
    brands = ["alpha", "bravo", "chai", "delta", "echo", "foxtrot"]
    for i, room in enumerate(rooms):
        brand = rng.choice(brands)
        index.assign_iword(room, brand)
        twords = rng.sample(vocab, k=rng.randint(1, 4))
        index.add_twords(brand, twords)

    ps = space.partition(cells[0]).footprint.random_interior_point(rng)
    pt = space.partition(cells[-1]).footprint.random_interior_point(rng)
    return space, index, ps, pt

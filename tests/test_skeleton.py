"""Tests for the skeleton lower-bound index (Xie et al. substrate)."""

import math

import pytest

from repro.datasets import build_synthetic_space
from repro.geometry import Point
from repro.space import DoorGraph, SkeletonIndex


@pytest.fixture(scope="module")
def multi():
    space, rooms = build_synthetic_space(floors=3, scale=0.12)
    return space, rooms, SkeletonIndex(space), DoorGraph(space)


class TestSameFloor:
    def test_same_floor_is_euclidean(self, fig1):
        sk = SkeletonIndex(fig1.space)
        d2, d7 = fig1.did("d2"), fig1.did("d7")
        pos2 = fig1.space.door(d2).position
        pos7 = fig1.space.door(d7).position
        assert sk.lower_bound(d2, d7) == pytest.approx(pos2.distance_to(pos7))

    def test_point_item(self, fig1):
        sk = SkeletonIndex(fig1.space)
        d2 = fig1.did("d2")
        pos2 = fig1.space.door(d2).position
        assert sk.lower_bound(fig1.ps, d2) == pytest.approx(
            fig1.ps.distance_to(pos2))

    def test_identity_zero(self, fig1):
        sk = SkeletonIndex(fig1.space)
        d2 = fig1.did("d2")
        assert sk.lower_bound(d2, d2) == 0.0

    def test_no_staircases_on_single_floor(self, fig1):
        sk = SkeletonIndex(fig1.space)
        assert sk.staircase_doors == []


class TestCrossFloor:
    def test_cross_floor_positive(self, multi):
        space, rooms, sk, graph = multi
        a = space.partition(rooms[0][0]).footprint.center
        b = space.partition(rooms[2][0]).footprint.center
        lb = sk.lower_bound(a, b)
        assert 0 < lb < math.inf

    def test_symmetry(self, multi):
        space, rooms, sk, graph = multi
        a = space.partition(rooms[0][0]).footprint.center
        b = space.partition(rooms[2][3]).footprint.center
        assert sk.lower_bound(a, b) == pytest.approx(sk.lower_bound(b, a))

    def test_is_true_lower_bound_of_graph_distance(self, multi):
        """The critical soundness property behind Pruning Rules 1-4."""
        space, rooms, sk, graph = multi
        doors = sorted(space.doors)
        sources = doors[:: max(1, len(doors) // 6)]
        for src in sources:
            dist, _ = graph.dijkstra(src)
            for dst in doors[:: max(1, len(doors) // 10)]:
                if dst not in dist:
                    continue
                assert sk.lower_bound(src, dst) <= dist[dst] + 1e-6, (
                    f"skeleton over-estimates {src}->{dst}")

    def test_stair_door_to_adjacent_floor_uses_euclid(self, multi):
        space, rooms, sk, graph = multi
        stair_doors = sk.staircase_doors
        assert stair_doors
        sd = stair_doors[0]
        pos = space.door(sd).position
        target = Point(pos.x + 5.0, pos.y, float(pos.floor))
        assert sk.lower_bound(sd, target) == pytest.approx(
            pos.distance_to(target))


class TestViaPartition:
    def test_via_partition_bound(self, fig1):
        """Rule 3's δLB(ps, v3, pt): enter and leave costa."""
        sk = SkeletonIndex(fig1.space)
        v3 = fig1.pid("v3")
        lb = sk.lower_bound_via_partition(fig1.ps, v3, fig1.pt)
        # Must be at least the straight ps->pt distance.
        assert lb >= fig1.ps.distance_to(fig1.pt) - 1e-9

    def test_via_partition_lower_bounds_real_route(self, fig1, fig1_engine):
        """Any real route through the partition is at least the bound."""
        sk = SkeletonIndex(fig1.space)
        v10 = fig1.pid("v10")
        lb = sk.lower_bound_via_partition(fig1.ps, v10, fig1.pt)
        ans = fig1_engine.query(
            fig1.ps, fig1.pt, delta=200.0, keywords=["apple"],
            k=1, alpha=0.9, algorithm="ToE")
        best = ans.routes[0]
        if v10 in best.route.vias:
            assert best.distance >= lb - 1e-9

    def test_dead_end_partition(self, fig1):
        sk = SkeletonIndex(fig1.space)
        v10 = fig1.pid("v10")
        lb = sk.lower_bound_via_partition(fig1.ps, v10, fig1.pt)
        assert lb < math.inf

"""The example scripts must run and produce the documented behaviour."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240)


class TestQuickstart:
    @pytest.fixture(scope="class")
    def output(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_prints_ranked_routes(self, output):
        assert "#1:" in output and "#2:" in output

    def test_scores_present(self, output):
        assert "ψ=" in output and "ρ=" in output

    def test_koe_agrees(self, output):
        assert "KoE finds the same best route" in output


class TestAirport:
    @pytest.fixture(scope="class")
    def output(self):
        result = run_example("airport_routing.py")
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_covers_all_three_needs(self, output):
        assert "covers ['cookies', 'euros', 'noodles']" in output

    def test_time_budget_conversion(self, output):
        assert "Δ = 1008 m" in output

    def test_rushed_scenario_reported(self, output):
        assert "With only 5 minutes" in output


class TestMallShopping:
    @pytest.fixture(scope="class")
    def output(self):
        result = run_example("mall_shopping.py", "0.15")
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_compares_algorithms(self, output):
        assert "ToE:" in output and "KoE:" in output

    def test_alpha_sweep(self, output):
        assert "α=0.1" in output and "α=0.9" in output

    def test_keywords_covered(self, output):
        """At high α the best route must cover some keywords."""
        import re
        rhos = [float(m) for m in re.findall(r"α=0\.9: ρ=([0-9.]+)", output)]
        assert rhos and rhos[0] > 0


class TestWarehouse:
    @pytest.fixture(scope="class")
    def output(self):
        result = run_example("warehouse_robot.py")
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_all_orders_answered(self, output):
        assert output.count("pick path visits") == 3

    def test_full_coverage_first_order(self, output):
        # charger + webcam live in different bins; both get visited.
        assert "['bin-a1', 'bin-a2']" in output

    def test_mixed_iword_tword_order(self, output):
        assert "bin-a2" in output and "bin-b2" in output

"""Tests for the dataset generators: floorplan, corpus, real mall."""

import math
import random

import pytest

from repro.datasets import (
    CorpusConfig,
    FloorplanConfig,
    RealMallConfig,
    build_corpus,
    build_floor,
    build_real_mall,
    build_synthetic_space,
)
from repro.datasets.assign import assign_by_category, assign_random
from repro.space import DoorGraph, PartitionKind


class TestFloorplan:
    def test_paper_scale_counts(self):
        """Defaults reproduce the paper's 96 rooms / 141 partitions."""
        cfg = FloorplanConfig()
        assert cfg.rooms_per_floor == 96
        assert cfg.partitions_per_floor == 141

    def test_five_floor_default_space(self):
        space, rooms = build_synthetic_space(floors=5)
        assert space.num_partitions == 5 * 141 == 705
        # The paper reports 1100 doors for five floors; our layout
        # lands within a few percent.
        assert abs(space.num_doors - 1100) / 1100 < 0.05
        assert space.num_floors == 5

    def test_single_floor(self):
        space = build_floor()
        assert space.num_partitions == 141
        assert len(space.staircase_partitions()) == 4

    def test_rooms_by_floor(self):
        space, rooms = build_synthetic_space(floors=3, scale=0.2)
        assert set(rooms) == {0, 1, 2}
        for f, pids in rooms.items():
            for pid in pids:
                assert space.partition(pid).floor == f
                assert space.partition(pid).kind is PartitionKind.ROOM

    def test_scaled_structure(self):
        cfg = FloorplanConfig().scaled(0.25)
        assert cfg.rooms_per_floor < 96
        assert cfg.side < 1368.0
        with pytest.raises(ValueError):
            FloorplanConfig().scaled(0.0)

    def test_every_floor_connected(self):
        """All doors mutually reachable through the door graph."""
        space, _ = build_synthetic_space(floors=2, scale=0.15)
        graph = DoorGraph(space)
        source = min(space.doors)
        dist, _ = graph.dijkstra(source)
        assert len(dist) == space.num_doors

    def test_stairway_length_near_20m(self):
        """Adjacent-floor stair hops ≈ 20 m like the paper's stairways."""
        space, _ = build_synthetic_space(floors=2, scale=0.15)
        graph = DoorGraph(space)
        stair_doors = [d for d, door in space.doors.items()
                       if door.is_staircase_door]
        assert stair_doors
        for sd in stair_doors:
            pos = space.door(sd).position
            # Distance from the stair door down to its floor-level
            # entrance is 10 m of vertical drop plus planar offset.
            for n, via, w in graph.neighbours(sd):
                assert w >= 10.0

    def test_invalid_floors(self):
        with pytest.raises(ValueError):
            build_synthetic_space(floors=0)


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(CorpusConfig().scaled(0.15))

    def test_deterministic(self):
        a = build_corpus(CorpusConfig().scaled(0.1))
        b = build_corpus(CorpusConfig().scaled(0.1))
        assert a.brands == b.brands
        assert a.twords == b.twords

    def test_some_brands_without_twords(self, corpus):
        stats = corpus.stats()
        assert stats["brands_with_twords"] < stats["num_brands"]

    def test_brand_names_not_twords(self, corpus):
        brands = set(corpus.brands)
        for words in corpus.twords.values():
            assert not (brands & set(words))

    def test_twords_capped(self, corpus):
        for words in corpus.twords.values():
            assert len(words) <= 60

    def test_categories_assigned(self, corpus):
        assert set(corpus.categories) == set(corpus.brands)

    def test_paper_statistics_at_full_scale(self):
        """Full-scale corpus tracks the paper's published statistics."""
        corpus = build_corpus(CorpusConfig())
        stats = corpus.stats()
        assert stats["num_brands"] == 1225
        # Paper: 1120 brands with keywords, 16.6 t-words on average.
        assert abs(stats["brands_with_twords"] - 1120) < 60
        assert 12.0 <= stats["avg_twords_per_brand"] <= 22.0

    def test_overlap_is_long_tailed(self):
        """Indirect matching must stay sparse (paper Section V-A2)."""
        from repro.keywords.matching import candidate_iword_set
        from repro.keywords.mappings import KeywordIndex
        corpus = build_corpus(CorpusConfig().scaled(0.3))
        index = KeywordIndex()
        for pid, brand in enumerate(corpus.brands_with_twords):
            index.assign_iword(pid, brand)
            index.add_twords(brand, corpus.twords[brand])
        twords = sorted(index.vocabulary.twords)
        rng = random.Random(0)
        sizes = [len(candidate_iword_set(index, rng.choice(twords), tau=0.2))
                 for _ in range(30)]
        assert sum(sizes) / len(sizes) < 6.0


class TestAssignment:
    def test_assign_random_covers_rooms(self):
        corpus = build_corpus(CorpusConfig().scaled(0.1))
        rooms = list(range(40))
        index = assign_random(rooms, corpus)
        assert len(index.labelled_partitions()) == 40

    def test_assign_by_category_clusters_floors(self):
        corpus = build_corpus(CorpusConfig().scaled(0.1))
        rooms_by_floor = {0: list(range(20)), 1: list(range(20, 40))}
        index = assign_by_category(rooms_by_floor, corpus)
        # Each brand's partitions should sit on a single floor.
        for brand in index.iwords:
            floors = {0 if pid < 20 else 1 for pid in index.i2p(brand)}
            assert len(floors) <= 1


class TestRealMall:
    def test_build_scaled(self):
        space, kindex, corpus = build_real_mall(
            RealMallConfig(scale=0.1))
        assert space.num_floors == 7
        stats = kindex.stats()
        assert stats["num_labelled_partitions"] > 0
        assert stats["num_twords"] > 0

    def test_full_scale_statistics(self):
        space, kindex, corpus = build_real_mall(RealMallConfig())
        stats = kindex.stats()
        # Paper: 639 stores, 533 i-words, avg 9.4 / max 31 t-words.
        assert stats["num_labelled_partitions"] == 639
        assert stats["num_iwords"] <= 533
        assert stats["max_twords_per_iword"] <= 31
        assert 5.0 <= stats["avg_twords_per_iword"] <= 14.0

"""KoE-specific behaviour: keyword-driven expansion, loops, KoE*."""

import pytest

from repro.core import IKRQ, SearchConfig
from repro.core.koe import MatrixContinuationProvider
from repro.space.graph import DoorMatrix


class TestKeywordDrivenExpansion:
    def test_koe_pops_far_fewer_stamps(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        toe = fig1_engine.search(query, "ToE")
        koe = fig1_engine.search(query, "KoE")
        assert koe.stats.stamps_popped < toe.stats.stamps_popped

    def test_koe_stamps_sit_at_key_partitions(self, fig1, fig1_engine):
        """Every KoE route alternates between key partitions: each
        intermediate stamp's tail enters a key partition."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        answer = fig1_engine.search(query, "KoE")
        assert answer.routes

    def test_covered_keywords_not_revisited(self, fig1, fig1_engine):
        """KoE's P' filtering: after covering 'latte' via starbucks it
        does not expand towards costa (both match latte)."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=200.0,
                     keywords=("latte",), k=10, alpha=0.5)
        answer = fig1_engine.search(query, "KoE")
        v3, v7 = fig1.pid("v3"), fig1.pid("v7")
        for r in answer.routes:
            kp = set(r.kp)
            # A single route never needs both latte partitions.
            assert not ({v3, v7} <= kp), r.route.describe(fig1.space)

    def test_dead_end_keyword_partition_reached_via_loop(
            self, fig1, fig1_engine):
        """v10 (apple) is a dead end; KoE must use the (d15, d15) loop
        to leave it and still reach pt."""
        query = IKRQ(ps=fig1.points["p1"], pt=fig1.pt, delta=300.0,
                     keywords=("apple",), k=1, alpha=0.9)
        answer = fig1_engine.search(query, "KoE")
        assert answer.routes
        best = answer.routes[0]
        assert "apple" in best.route.words
        assert best.relevance == pytest.approx(2.0)

    def test_terminal_stays_reachable_when_keyword_covered(
            self, fig1, fig1_engine):
        """Even if the terminal partition's i-word matches a covered
        keyword, KoE keeps it in the pool (deviation note in the
        module docstring)."""
        # pt lives in hallway v5 (no i-word) so craft a query whose
        # terminal is a shop: route to inside costa.
        pt_in_costa = fig1.space.partition(
            fig1.pid("v3")).footprint.center
        query = IKRQ(ps=fig1.ps, pt=pt_in_costa, delta=120.0,
                     keywords=("costa",), k=1)
        answer = fig1_engine.search(query, "KoE")
        assert answer.routes


class TestKoEStar:
    def test_results_equal_koe(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        koe = fig1_engine.search(query, "KoE")
        star = fig1_engine.search(query, "KoE*")
        assert [(r.kp, round(r.distance, 6)) for r in koe.routes] == \
               [(r.kp, round(r.distance, 6)) for r in star.routes]

    def test_uses_precomputed_routes(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        star = fig1_engine.search(query, "KoE*")
        assert star.stats.precomputed_hits + star.stats.precomputed_misses > 0

    def test_memory_includes_matrix(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte",), k=1)
        koe = fig1_engine.search(query, "KoE")
        star = fig1_engine.search(query, "KoE*")
        assert star.stats.estimated_peak_mb() > koe.stats.estimated_peak_mb()

    def test_matrix_provider_falls_back_on_banned(self, fig1, fig1_engine):
        """A cached route through a banned door must be recomputed."""
        graph = fig1_engine.graph
        matrix = DoorMatrix(graph)
        provider = MatrixContinuationProvider(matrix)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=300.0,
                     keywords=("latte",), k=1)
        ctx = fig1_engine.context(query)
        from repro.core import IKRQSearch, SearchConfig
        from repro.core.koe import KeywordOrientedExpansion
        search = IKRQSearch(ctx, KeywordOrientedExpansion(),
                            SearchConfig(), provider=provider)
        d13 = fig1.did("d13")
        # Direct path d13 -> d5 exists through v5; ban its doors so the
        # cached route is rejected.
        cached = matrix.route(d13, fig1.did("d5"))
        banned = frozenset(cached[0][:-1]) if len(cached[0]) > 1 else frozenset({fig1.did("d16")})
        out = provider.nonloop(search, d13, fig1.pid("v5"),
                               {fig1.did("d5")}, banned, 1000.0)
        for target, (doors, vias, dist) in out.items():
            assert not any(d in banned for d in doors)


class TestKoEVariants:
    def test_koe_d_explores_more(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        koe = fig1_engine.search(query, "KoE")
        koe_d = fig1_engine.search(query, "KoE-D")
        assert koe_d.stats.stamps_created >= koe.stats.stamps_created

    def test_koe_b_same_results(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        a = fig1_engine.search(query, "KoE")
        b = fig1_engine.search(query, "KoE-B")
        assert [(r.kp, round(r.score, 9)) for r in a.routes] == \
               [(r.kp, round(r.score, 9)) for r in b.routes]

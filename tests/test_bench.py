"""Tests for the benchmark harness, experiments and reporting."""

import pytest

from repro.bench import BenchHarness, format_series, format_table
from repro.bench import experiments as E
from repro.core import IKRQ, IKRQEngine
from repro.datasets import QueryGenerator
from repro.datasets.queries import QueryWorkload

TINY = dict(scale=0.08, instances=1, repeats=1)


@pytest.fixture(scope="module")
def tiny_env():
    return E.synthetic_env(floors=2, scale=0.08, seed=1)


class TestHarness:
    def test_run_query_collects_metrics(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=2)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=1, qw_size=2)
        run = harness.run_query(wl.queries[0], "ToE")
        assert len(run.times_ms) == 2
        assert run.avg_time_ms > 0
        assert run.avg_memory_mb >= 0

    def test_run_workload_all_algorithms(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=1)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=2, qw_size=2)
        result = harness.run_workload(wl, ["ToE", "KoE"], {"x": 1})
        assert set(result.runs) == {"ToE", "KoE"}
        assert result.setting == {"x": 1}
        assert result.row("toe").algorithm == "ToE"

    def test_aliases_resolved(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=1)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=1, qw_size=1)
        result = harness.run_workload(wl, ["ToE\\D"])
        assert "ToE-D" in result.runs

    def test_max_expansions_forwarded(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=1,
                               max_expansions=5)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=1, qw_size=2)
        run = harness.run_query(wl.queries[0], "ToE-P")
        assert max(run.pops) <= 6


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "a" in text and "2.500" in text

    def test_format_series_time(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=1)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=1, qw_size=2)
        results = [harness.run_workload(wl, ["ToE"], {"k": 7})]
        text = format_series(results, "k", "time_ms")
        assert "ToE" in text and "k" in text

    def test_format_series_metrics(self, tiny_env):
        harness = BenchHarness(tiny_env.engine, repeats=1)
        wl = tiny_env.qgen.workload(s2t=80.0, instances=1, qw_size=1)
        results = [harness.run_workload(wl, ["ToE"], {"qw": 1})]
        for metric in ("memory_mb", "routes", "homogeneous_rate"):
            assert format_series(results, "qw", metric)
        with pytest.raises(ValueError):
            format_series(results, "qw", "nope")

    def test_format_series_empty(self):
        assert format_series([], "k") == "(no results)"


class TestExperiments:
    """Smoke-run each figure harness at a tiny scale."""

    def test_fig04(self):
        results = E.fig04_default_overview(**TINY, floors=2)
        assert len(results) == 1
        assert set(results[0].runs) == set(E.OVERVIEW_SEVEN)

    def test_fig05(self):
        results = E.fig05_time_vs_k(**TINY, floors=2, k_values=(1, 3))
        assert [r.setting["k"] for r in results] == [1, 3]

    def test_fig06_07(self):
        results = E.fig06_07_time_memory_vs_qw(
            **TINY, floors=2, qw_values=(1, 2))
        assert len(results) == 2

    def test_fig08_09(self):
        results = E.fig08_09_time_memory_vs_eta(
            **TINY, floors=2, eta_values=(1.6,))
        assert results[0].setting["eta"] == 1.6

    def test_fig10(self):
        results = E.fig10_time_vs_beta(
            **TINY, floors=2, beta_values=(0.5, 1.0))
        assert set(results[0].runs) == {"ToE", "KoE"}

    def test_fig11(self):
        results = E.fig11_time_vs_floors(
            scale=0.08, instances=1, repeats=1, floor_values=(2, 3))
        assert [r.setting["floors"] for r in results] == [2, 3]

    def test_fig12(self):
        results = E.fig12_time_vs_s2t(
            **TINY, floors=2, s2t_values=(900.0,))
        assert results[0].setting["s2t"] == 900.0

    def test_fig13_14(self):
        results = E.fig13_14_koestar_vs_eta(
            **TINY, floors=2, eta_values=(1.4,))
        assert set(results[0].runs) == {"KoE", "KoE*"}

    def test_fig15(self):
        results = E.fig15_toep_vs_eta(
            scale=0.08, instances=1, repeats=1, floors=2,
            eta_values=(1.4,), max_expansions=2000)
        assert set(results[0].runs) == {"ToE", "ToE-P"}

    def test_fig16(self):
        results = E.fig16_homogeneous_rate_vs_k(
            scale=0.08, instances=1, repeats=1, floors=2,
            k_values=(1, 9), max_expansions=2000)
        rates = [r.runs["ToE-P"].avg_homogeneous_rate for r in results]
        assert all(0.0 <= rate <= 1.0 for rate in rates)

    def test_fig17_18(self):
        results = E.fig17_18_real_time_memory_vs_qw(
            scale=0.08, instances=1, repeats=1, qw_values=(1,))
        assert set(results[0].runs) == set(E.MAIN_SIX)

    def test_fig19(self):
        results = E.fig19_real_time_vs_eta(
            scale=0.08, instances=1, repeats=1, eta_values=(1.4,))
        assert results[0].setting["eta"] == 1.4

    def test_fig20(self):
        results = E.fig20_real_homogeneous_rate_vs_qw(
            scale=0.08, instances=1, repeats=1, qw_values=(1,),
            max_expansions=2000)
        assert "ToE-P" in results[0].runs

    def test_registry_covers_all_figures(self):
        assert set(E.REGISTRY) == {
            "fig04", "fig05", "fig06_07", "fig08_09", "fig10", "fig11",
            "fig12", "fig13_14", "fig15", "fig16", "fig17_18", "fig19",
            "fig20"}

"""The paper's worked examples, encoded as tests against the Fig. 1
fixture (Examples 1–8, Table II, and the Section V-A5 quality study).

Where an example's arithmetic depends only on the formulas (ρ, ψ,
pruning bounds), the paper's exact numbers are asserted.  Where it
depends on figure geometry the fixture reproduces (Example 1's
distances), the numbers are asserted too; remaining geometric claims
are validated structurally (route sets, primality, orderings).
"""

import pytest

from repro.core import IKRQ, NaiveSearch, QueryContext
from repro.geometry import Point


@pytest.fixture
def ctx_latte_apple(fig1, fig1_engine):
    query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                 keywords=("latte", "apple"), k=3, alpha=0.5, tau=0.5)
    return fig1_engine.context(query)


class TestExample1RouteDistance:
    """δ(R?) = 12.5 m and δ(R) = 18.5 m for (ps, d2, d5, pt)."""

    def test_partial_route_distance(self, fig1, ctx_latte_apple):
        ctx = ctx_latte_apple
        r = ctx.start_route()
        r = ctx.extend_to_door(r, fig1.did("d2"), via=fig1.pid("v1"))
        r = ctx.extend_to_door(r, fig1.did("d5"), via=fig1.pid("v2"))
        assert r.distance == pytest.approx(12.5)

    def test_complete_route_distance(self, fig1, ctx_latte_apple):
        ctx = ctx_latte_apple
        r = ctx.start_route()
        r = ctx.extend_to_door(r, fig1.did("d2"), via=fig1.pid("v1"))
        r = ctx.extend_to_door(r, fig1.did("d5"), via=fig1.pid("v2"))
        r = ctx.complete_route(r)
        assert r.distance == pytest.approx(18.5)
        assert r.is_complete


class TestExample2PrimeRoutes:
    """Homogeneous routes from Table II: the shortest one is prime."""

    def build(self, ctx, fig1, spec):
        r = ctx.start_route()
        for door, via in spec:
            r = ctx.extend_to_door(r, fig1.did(door), via=fig1.pid(via))
            assert r is not None, (door, via)
        return ctx.complete_route(r)

    def test_homogeneous_family(self, fig1, fig1_engine):
        """Rebuild Table II's R1, R2, R4 with QW = (oppo, costa)."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=120.0,
                     keywords=("oppo", "costa"), k=3, alpha=0.5)
        ctx = fig1_engine.context(query)
        r1 = self.build(ctx, fig1, [("d2", "v1"), ("d6", "v2"), ("d7", "v3")])
        r2 = self.build(ctx, fig1, [("d2", "v1"), ("d5", "v2"),
                                    ("d7", "v5"), ("d7", "v3")])
        r4 = self.build(ctx, fig1, [("d3", "v1"), ("d5", "v5"),
                                    ("d5", "v2"), ("d7", "v5"), ("d7", "v3")])
        kp1 = ctx.key_partition_sequence(r1)
        assert kp1 == (fig1.pid("v1"), fig1.pid("v2"),
                       fig1.pid("v3"), fig1.pid("v5"))
        # All three share the key-partition sequence (homogeneous).
        assert kp1 == ctx.key_partition_sequence(r2)
        assert kp1 == ctx.key_partition_sequence(r4)
        # R1 is the shortest: it is prime against the others.
        assert r1.distance < r2.distance < r4.distance

    def test_search_returns_only_prime_of_family(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=120.0,
                     keywords=("oppo", "costa"), k=5, alpha=0.5)
        answer = fig1_engine.search(query, "ToE")
        kps = [r.kp for r in answer.routes]
        assert len(kps) == len(set(kps)), "homogeneous routes in results"


class TestExample5RouteWords:
    """RW((ps, d3, pt)) = {zara}: door words come from leave-sets."""

    def test_route_words(self, fig1, ctx_latte_apple):
        ctx = ctx_latte_apple
        r = ctx.start_route()
        r = ctx.extend_to_door(r, fig1.did("d3"), via=fig1.pid("v1"))
        r = ctx.complete_route(r)
        assert r.words == frozenset({"zara"})

    def test_door_iwords_union_both_sides(self, fig1, ctx_latte_apple):
        # d2 leaves into v1 (zara) and v2 (oppo).
        words = ctx_latte_apple.item_iwords(fig1.did("d2"))
        assert words == frozenset({"zara", "oppo"})

    def test_point_iwords(self, fig1, ctx_latte_apple):
        assert ctx_latte_apple.item_iwords(fig1.ps) == frozenset({"zara"})
        assert ctx_latte_apple.item_iwords(fig1.pt) == frozenset()


class TestExample6Relevance:
    """ρ over the stated route-word sets, with τ = 0.5."""

    def test_rho_r1(self, ctx_latte_apple):
        qk = ctx_latte_apple.qk
        assert qk.relevance_of_iword_set(
            {"zara", "oppo", "costa"}) == pytest.approx(1.75)

    def test_rho_r2(self, ctx_latte_apple):
        qk = ctx_latte_apple.qk
        assert qk.relevance_of_iword_set(
            {"apple", "starbucks", "costa"}) == pytest.approx(3.0)

    def test_max_similarity_selected(self, ctx_latte_apple):
        """latte picks starbucks (1.0) over costa (0.75)."""
        qk = ctx_latte_apple.qk
        with_both = qk.relevance_of_iword_set({"starbucks", "costa"})
        with_costa = qk.relevance_of_iword_set({"costa"})
        assert with_both == pytest.approx(2.0)   # 1 + 1/1
        assert with_costa == pytest.approx(1.75)


class TestExample7Pruning:
    """The pruning-rule arithmetic with the paper's numbers."""

    def test_rule1_arithmetic(self):
        """δ(R?) + |dn, pt|L = 12.5 + 6 > Δ = 16 — prune."""
        assert 12.5 + 6.0 > 16.0

    def test_rule1_on_fixture(self, fig1, fig1_engine):
        """With Δ = 16 m no route via d5 survives (12.5 + lb > 16)."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=16.0,
                     keywords=("latte", "apple"), k=3, alpha=0.5)
        answer = fig1_engine.search(query, "ToE")
        for r in answer.routes:
            assert r.distance <= 16.0

    def test_rule2_rule3_monotonicity(self, fig1, fig1_engine):
        """Tightening Δ only removes options."""
        loose = fig1_engine.search(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=60.0,
            keywords=("latte", "apple"), k=5, alpha=0.5), "ToE")
        tight = fig1_engine.search(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=25.0,
            keywords=("latte", "apple"), k=5, alpha=0.5), "ToE")
        assert len(tight.routes) <= len(loose.routes)
        loose_classes = {r.kp for r in loose.routes}
        for r in tight.routes:
            assert r.kp in loose_classes


class TestExample8UpperBound:
    """Pruning Rule 4's arithmetic from Example 8."""

    def test_kbound_example_numbers(self):
        alpha, delta = 0.2, 25.0
        rho, dist = 1.75, 20.0
        psi = alpha * rho / 3.0 + (1 - alpha) * (delta - dist) / delta
        assert psi == pytest.approx(0.2766, abs=1e-3)
        # Partial route with lower bound 23.5:
        upper = alpha * 1.0 + (1 - alpha) * (1 - 23.5 / 25.0)
        assert upper == pytest.approx(0.248)
        assert upper < psi  # pruned

    def test_upper_bound_function(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=25.0,
                     keywords=("latte", "apple"), k=1, alpha=0.2)
        ctx = fig1_engine.context(query)
        assert ctx.upper_bound_score(23.5) == pytest.approx(0.248)


class TestSectionVA5Quality:
    """The earphone example: indirect matching finds the apple store."""

    def test_route_set(self, fig1, fig1_engine):
        p1, p2 = fig1.points["p1"], fig1.points["p2"]
        answer = fig1_engine.query(
            p1, p2, delta=150.0, keywords=["earphone"],
            k=2, alpha=0.5, tau=0.1, algorithm="ToE")
        assert len(answer.routes) == 2
        words = [r.route.words for r in answer.routes]
        # The two keyword-aware routes: one through samsung (direct
        # match) and one through apple (indirect via shared t-words).
        assert any("samsung" in w for w in words)
        assert any("apple" in w for w in words)

    def test_exact_matching_would_miss_apple(self, fig1, fig1_engine):
        """With τ = 1.0 only exact/direct matches survive; the apple
        route loses its keyword score."""
        p1, p2 = fig1.points["p1"], fig1.points["p2"]
        strict = fig1_engine.query(
            p1, p2, delta=150.0, keywords=["earphone"],
            k=2, alpha=0.5, tau=0.999, algorithm="ToE")
        apple_routes = [r for r in strict.routes
                        if "apple" in r.route.words and r.relevance > 0]
        assert not apple_routes

    def test_short_but_irrelevant_route_ranks_below(self, fig1, fig1_engine):
        """R3 = (p1, d4, p2) is shortest but keyword-blind: with
        α = 0.5 both keyword routes outrank it."""
        p1, p2 = fig1.points["p1"], fig1.points["p2"]
        answer = fig1_engine.query(
            p1, p2, delta=150.0, keywords=["earphone"],
            k=3, alpha=0.5, tau=0.1, algorithm="ToE")
        scores = {tuple(r.route.doors): r for r in answer.routes}
        direct = scores.get((fig1.did("d4"),))
        if direct is not None:
            assert direct.relevance == 0.0
            assert answer.routes[0].relevance > 0

    def test_psi_formula_va5(self, fig1, fig1_engine):
        """ψ(R2) = 0.5·(2/2) + 0.5·(80/100) = 0.9 (paper's numbers)."""
        query = IKRQ(ps=fig1.points["p1"], pt=fig1.points["p2"],
                     delta=100.0, keywords=("earphone",), k=2,
                     alpha=0.5, tau=0.1)
        ctx = fig1_engine.context(query)
        # A fake fully-covering route of length 20.
        route = ctx.start_route()
        object.__setattr__(route, "sims", (1.0,))
        object.__setattr__(route, "distance", 20.0)
        assert ctx.ranking_score(route) == pytest.approx(0.9)


class TestLemma2LoopRestriction:
    def test_loop_into_keyword_partition_found(self, fig1, fig1_engine):
        """Visiting dead-end v10 (apple) requires the (d15, d15) loop."""
        answer = fig1_engine.query(
            fig1.points["p1"], fig1.points["p2"], delta=150.0,
            keywords=["apple"], k=1, alpha=0.9, algorithm="ToE")
        best = answer.routes[0]
        d15 = fig1.did("d15")
        assert list(best.route.doors).count(d15) == 2

    def test_no_pointless_loops_in_results(self, fig1, fig1_engine):
        """Loops through keyword-less partitions never help (Lemma 2):
        no returned route contains one."""
        answer = fig1_engine.query(
            fig1.ps, fig1.pt, delta=80.0,
            keywords=["latte", "apple"], k=5, alpha=0.5, algorithm="ToE")
        keyword_pids = fig1_engine.context(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=80.0,
            keywords=("latte", "apple"))).keyword_partitions
        for r in answer.routes:
            doors = r.route.doors
            for i in range(1, len(doors)):
                if doors[i] == doors[i - 1]:
                    assert r.route.vias[i] in keyword_pids or \
                        r.route.vias[i + 1 if i + 1 < len(r.route.vias) else i] in keyword_pids

"""Tests for the optional extensions (paper §VII future work):
soft distance constraints, popularity-aware ranking, elevators,
and venue serialisation."""

import math

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.core.query import QueryContext
from repro.geometry import Point, Rect
from repro.space import (
    IndoorSpaceBuilder,
    PartitionKind,
    SkeletonIndex,
    add_elevator_shaft,
    load_space,
    save_space,
    space_from_dict,
    space_to_dict,
)


class TestSoftDistanceConstraint:
    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=10.0,
                 keywords=("x",), soft_slack=-0.1)

    def test_delta_hard(self, fig1):
        q = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=100.0,
                 keywords=("latte",), soft_slack=0.25)
        assert q.delta_hard == pytest.approx(125.0)
        assert IKRQ(ps=fig1.ps, pt=fig1.pt, delta=100.0,
                    keywords=("latte",)).delta_hard == 100.0

    def test_soft_admits_overshooting_routes(self, fig1, fig1_engine):
        """With a slack, routes between Δ and Δ(1+slack) may return."""
        hard = fig1_engine.search(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=35.0,
            keywords=("latte", "apple"), k=5, alpha=0.9), "ToE")
        soft = fig1_engine.search(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=35.0,
            keywords=("latte", "apple"), k=5, alpha=0.9,
            soft_slack=1.0), "ToE")
        assert len(soft.routes) >= len(hard.routes)
        over = [r for r in soft.routes if r.distance > 35.0]
        assert over, "slack admitted no overshooting route"
        for r in over:
            assert r.distance <= 70.0 + 1e-9

    def test_overshooting_routes_rank_below_equal_relevance(
            self, fig1, fig1_engine):
        """The negative spatial part penalises overshoot."""
        soft = fig1_engine.search(IKRQ(
            ps=fig1.ps, pt=fig1.pt, delta=30.0,
            keywords=("latte",), k=10, alpha=0.5, soft_slack=1.5), "ToE")
        by_rel = {}
        for r in soft.routes:
            by_rel.setdefault(round(r.relevance, 6), []).append(r)
        for group in by_rel.values():
            dists = [r.distance for r in group]
            scores = [r.score for r in group]
            # Same relevance: score strictly decreases with distance.
            for (d1, s1) in zip(dists, scores):
                for (d2, s2) in zip(dists, scores):
                    if d1 < d2:
                        assert s1 > s2 - 1e-12

    def test_soft_equivalent_to_naive(self, fig1, fig1_engine):
        """The pruning rules remain lossless under the slack."""
        from repro.core import config_for
        q = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=30.0,
                 keywords=("latte", "apple"), k=5, soft_slack=0.8)
        toe = fig1_engine.search(
            q, "ToE", config=config_for("ToE", exhaustive=True))
        naive = fig1_engine.search(q, "naive")
        assert [(r.kp, round(r.distance, 6)) for r in toe.routes] == \
               [(r.kp, round(r.distance, 6)) for r in naive.routes]


class TestPopularityRanking:
    def make_ctx(self, fig1, engine, gamma, popularity):
        q = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                 keywords=("latte",), gamma=gamma)
        return QueryContext(
            space=fig1.space, kindex=fig1.kindex, query=q,
            graph=engine.graph, skeleton=engine.skeleton,
            oracle=engine.oracle, popularity=popularity)

    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=10.0,
                 keywords=("x",), gamma=-1.0)

    def test_popularity_boosts_score(self, fig1, fig1_engine):
        v3 = fig1.pid("v3")
        ctx_plain = self.make_ctx(fig1, fig1_engine, 0.0, {})
        ctx_pop = self.make_ctx(fig1, fig1_engine, 1.0, {v3: 1.0})
        route = ctx_pop.start_route()
        route = ctx_pop.extend_to_door(route, fig1.did("d2"),
                                       via=fig1.pid("v1"))
        route = ctx_pop.extend_to_door(route, fig1.did("d6"),
                                       via=fig1.pid("v2"))
        route = ctx_pop.extend_to_door(route, fig1.did("d7"),
                                       via=fig1.pid("v3"))
        route = ctx_pop.complete_route(route)
        assert v3 in route.kp
        pop = ctx_pop.route_popularity(route)
        assert pop == pytest.approx(1.0 / len(route.kp))
        # Blended score stays in range and reflects the term.
        psi_plain = ctx_plain.ranking_score(route)
        psi_pop = ctx_pop.ranking_score(route)
        assert psi_pop == pytest.approx((psi_plain + 1.0 * pop) / 2.0)

    def test_upper_bound_still_dominates(self, fig1, fig1_engine):
        v3 = fig1.pid("v3")
        ctx = self.make_ctx(fig1, fig1_engine, 0.7, {v3: 0.9})
        route = ctx.start_route()
        route = ctx.extend_to_door(route, fig1.did("d2"), via=fig1.pid("v1"))
        psi = ctx.ranking_score(route)
        upper = ctx.upper_bound_score(route.distance)
        assert upper >= psi - 1e-12

    def test_search_with_popularity_reranks(self, fig1, fig1_engine):
        """A popular detour partition can overtake the plain winner."""
        q = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                 keywords=("latte",), k=3, alpha=0.5, gamma=2.0)
        v7 = fig1.pid("v7")  # starbucks — make it wildly popular
        from repro.core import IKRQSearch, SearchConfig
        from repro.core.toe import TopologyOrientedExpansion
        ctx = QueryContext(
            space=fig1.space, kindex=fig1.kindex, query=q,
            graph=fig1_engine.graph, skeleton=fig1_engine.skeleton,
            oracle=fig1_engine.oracle, popularity={v7: 1.0})
        search = IKRQSearch(ctx, TopologyOrientedExpansion(), SearchConfig())
        routes = search.run()
        assert routes
        assert v7 in routes[0].kp


class TestElevators:
    @pytest.fixture(scope="class")
    def tower(self):
        """Two floors of rooms joined by an elevator (no stairs)."""
        b = IndoorSpaceBuilder()
        for f in range(3):
            b.add_partition(f"hall{f}", Rect(0, 0, 30, 10, float(f)),
                            PartitionKind.HALLWAY)
        shafts = add_elevator_shaft(
            b, 30.0, 4.0, lobbies=["hall0", "hall1", "hall2"])
        space = b.build()
        return space, b, shafts

    def test_shaft_partitions_kind(self, tower):
        space, b, shafts = tower
        for pid in shafts:
            assert space.partition(pid).kind is PartitionKind.ELEVATOR

    def test_ride_doors_are_half_level(self, tower):
        space, b, shafts = tower
        ride = space.door(b.did("lift-ride0"))
        assert ride.is_staircase_door
        assert ride.level == 0.5

    def test_skeleton_covers_elevator(self, tower):
        """The skeleton index picks up lift doors as vertical links."""
        space, b, shafts = tower
        sk = SkeletonIndex(space)
        assert b.did("lift-ride0") in sk.staircase_doors
        a = Point(5.0, 5.0, 0.0)
        c = Point(5.0, 5.0, 2.0)
        assert sk.lower_bound(a, c) < math.inf

    def test_cross_floor_routing_through_lift(self, tower):
        space, b, shafts = tower
        from repro.keywords.mappings import KeywordIndex
        kindex = KeywordIndex()
        kindex.assign_iword(b.pid("hall2"), "skybar")
        engine = IKRQEngine(space, kindex)
        answer = engine.query(
            Point(2.0, 5.0, 0.0), Point(2.0, 5.0, 2.0),
            delta=300.0, keywords=["skybar"], k=1)
        assert answer.routes
        # The route must ride the shaft (two ride doors).
        doors = answer.routes[0].route.doors
        assert b.did("lift-ride0") in doors
        assert b.did("lift-ride1") in doors

    def test_minimum_two_floors(self):
        b = IndoorSpaceBuilder()
        b.add_partition("only", Rect(0, 0, 5, 5))
        with pytest.raises(ValueError):
            add_elevator_shaft(b, 5.0, 0.0, lobbies=["only"])


class TestSerialization:
    def test_roundtrip_fig1(self, fig1, tmp_path):
        path = tmp_path / "fig1.json"
        save_space(path, fig1.space, fig1.kindex)
        space, kindex = load_space(path)
        assert space.num_partitions == fig1.space.num_partitions
        assert space.num_doors == fig1.space.num_doors
        for pid, part in fig1.space.partitions.items():
            other = space.partition(pid)
            assert other.name == part.name
            assert other.kind == part.kind
            assert other.footprint.as_tuple() == part.footprint.as_tuple()
        for did, door in fig1.space.doors.items():
            other = space.door(did)
            assert other.enters == door.enters
            assert other.leaves == door.leaves
        assert kindex.p2i(fig1.pid("v3")) == "costa"
        assert kindex.i2t("costa") == fig1.kindex.i2t("costa")

    def test_roundtrip_preserves_query_results(self, fig1, tmp_path):
        path = tmp_path / "fig1.json"
        save_space(path, fig1.space, fig1.kindex)
        space, kindex = load_space(path)
        engine = IKRQEngine(space, kindex)
        answer = engine.query(fig1.ps, fig1.pt, delta=60.0,
                              keywords=["latte", "apple"], k=3)
        original = IKRQEngine(fig1.space, fig1.kindex).query(
            fig1.ps, fig1.pt, delta=60.0, keywords=["latte", "apple"], k=3)
        assert [round(r.score, 9) for r in answer.routes] == \
               [round(r.score, 9) for r in original.routes]

    def test_space_without_keywords(self, corridor, tmp_path):
        space, *_ = corridor
        path = tmp_path / "c.json"
        save_space(path, space)
        loaded, kindex = load_space(path)
        assert kindex is None
        assert loaded.num_doors == space.num_doors

    def test_one_way_doors_preserved(self, tmp_path):
        b = IndoorSpaceBuilder()
        b.add_partition("a", Rect(0, 0, 5, 5))
        b.add_partition("c", Rect(5, 0, 10, 5))
        b.add_door("gate", Point(5, 2), enters=("c",), leaves=("a",))
        doc = space_to_dict(b.build())
        space, _ = space_from_dict(doc)
        gate = space.door(0)
        assert gate.enters != gate.leaves

    def test_format_validation(self):
        with pytest.raises(ValueError):
            space_from_dict({"format": "something-else"})
        with pytest.raises(ValueError):
            space_from_dict({"format": "repro-indoor-space", "version": 99})

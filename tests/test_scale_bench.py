"""The synthetic-mall generator and the scale bench harness."""

from __future__ import annotations

import json

import pytest

from repro.bench.scale import run_scale, run_scale_size
from repro.bench.throughput import latency_percentiles
from repro.datasets.synth import (SynthMallConfig, build_synth_mall,
                                  mall_stats, venue_diameter)
from repro.space.serialize import space_to_dict


class TestSynthMall:
    def test_deterministic(self):
        cfg = SynthMallConfig(floors=2, rooms_per_floor=16,
                              words_per_room=4, seed=3)
        a_space, a_kindex = build_synth_mall(cfg)
        b_space, b_kindex = build_synth_mall(cfg)
        assert (space_to_dict(a_space, a_kindex)
                == space_to_dict(b_space, b_kindex))

    def test_seed_changes_assignment(self):
        base = SynthMallConfig(floors=2, rooms_per_floor=16,
                               words_per_room=4, seed=3)
        other = SynthMallConfig(floors=2, rooms_per_floor=16,
                                words_per_room=4, seed=4)
        a = space_to_dict(*build_synth_mall(base))
        b = space_to_dict(*build_synth_mall(other))
        assert a["partitions"] == b["partitions"]  # geometry is seedless
        assert a["keywords"] != b["keywords"]

    def test_floors_scale_the_venue(self):
        small, _ = build_synth_mall(SynthMallConfig(
            floors=1, rooms_per_floor=16, words_per_room=4))
        tall, _ = build_synth_mall(SynthMallConfig(
            floors=3, rooms_per_floor=16, words_per_room=4))
        assert len(tall.partitions) > 2 * len(small.partitions)
        assert venue_diameter(tall) > venue_diameter(small)

    def test_mall_stats_keys(self):
        space, kindex = build_synth_mall(SynthMallConfig(
            floors=1, rooms_per_floor=16, words_per_room=4))
        stats = mall_stats(space, kindex)
        assert set(stats) == {"partitions", "doors", "iwords", "twords"}
        assert stats["doors"] > stats["partitions"] > 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SynthMallConfig(floors=0)
        with pytest.raises(ValueError):
            SynthMallConfig(rooms_per_floor=4)


class TestLatencyPercentiles:
    def test_empty(self):
        assert latency_percentiles([]) == {}

    def test_nearest_rank(self):
        pct = latency_percentiles([0.001 * (i + 1) for i in range(100)])
        assert pct["p50_ms"] == pytest.approx(50.0)
        assert pct["p95_ms"] == pytest.approx(95.0)
        assert pct["p99_ms"] == pytest.approx(99.0)
        assert pct["max_ms"] == pytest.approx(100.0)

    def test_single_sample(self):
        pct = latency_percentiles([0.002])
        assert pct["p50_ms"] == pct["p99_ms"] == pytest.approx(2.0)


@pytest.mark.slow
class TestScaleBench:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scale_size(floors=2, rooms_per_floor=16,
                              words_per_room=4, seed=7, pool=4, repeat=1,
                              qw_size=3)

    def test_identity_verified_across_modes(self, result):
        assert result["verified_identical"] is True
        assert result["mode"] == "scale"
        assert result["queries"] == 4

    def test_entry_carries_all_series(self, result):
        for key in ("array_qps", "dict_qps", "snapshot_v2_qps",
                    "speedup_vs_dict", "floors", "partitions", "doors",
                    "venue_build_seconds", "index_build_seconds"):
            assert key in result, key
        for mode in ("array", "dict", "snapshot_v2"):
            pct = result["latency_ms"][mode]
            assert {"p50_ms", "p95_ms", "p99_ms"} <= set(pct)
        cold = result["cold_start"]
        assert cold["json_load_s"] > 0 and cold["binary_load_s"] > 0
        assert cold["json_bytes"] > 0 and cold["binary_bytes"] > 0

    def test_trajectory_append(self, tmp_path):
        artifact = tmp_path / "traj.json"
        results = run_scale(floors=[1], rooms_per_floor=16,
                            words_per_room=4, pool=3, repeat=1,
                            qw_size=2, artifact=str(artifact))
        assert len(results) == 1
        doc = json.loads(artifact.read_text())
        assert doc["format"] == "repro-bench-trajectory"
        entries = [e for e in doc["entries"] if e.get("mode") == "scale"]
        assert len(entries) == 1
        assert entries[0]["verified_identical"] is True

"""Tests for the query workload generator (Section V-A1)."""

import pytest

from repro.core import IKRQEngine
from repro.datasets import (
    CorpusConfig,
    QueryGenerator,
    build_corpus,
    build_synthetic_space,
)
from repro.datasets.assign import assign_random


@pytest.fixture(scope="module")
def env():
    space, rooms = build_synthetic_space(floors=2, scale=0.15)
    corpus = build_corpus(CorpusConfig().scaled(0.1))
    all_rooms = [r for f in sorted(rooms) for r in rooms[f]]
    kindex = assign_random(all_rooms, corpus)
    engine = IKRQEngine(space, kindex)
    return space, kindex, engine


class TestKeywordSampling:
    def test_beta_controls_iword_fraction(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=1)
        all_iwords = kindex.iwords
        words = gen.sample_keywords(5, beta=1.0)
        assert all(w in all_iwords for w in words)

    def test_beta_zero_prefers_twords(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=1)
        twords = kindex.vocabulary.twords
        words = gen.sample_keywords(4, beta=0.0)
        assert sum(1 for w in words if w in twords) >= 3

    def test_size_respected(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=1)
        for size in (1, 2, 3, 4, 5):
            assert len(gen.sample_keywords(size, beta=0.6)) == size

    def test_no_duplicates(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=3)
        for _ in range(10):
            words = gen.sample_keywords(5, beta=0.4)
            assert len(set(words)) == len(words)

    def test_invalid_size(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph)
        with pytest.raises(ValueError):
            gen.sample_keywords(0, beta=0.5)


class TestEndpoints:
    def test_endpoints_near_requested_separation(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=7)
        target = 150.0
        ps, pt, achieved = gen.endpoints(target)
        # The generator tolerates 25% around the requested distance
        # plus the in-partition hop to pt.
        assert achieved == pytest.approx(target, rel=0.6)

    def test_achieved_distance_is_feasible(self, env):
        """The reported separation is realisable: a real route exists
        with roughly that distance."""
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=9)
        ps, pt, achieved = gen.endpoints(120.0)
        real = engine.graph.point_to_point_distance(ps, pt)
        assert real <= achieved + 1e-6

    def test_deterministic_per_seed(self, env):
        space, kindex, engine = env
        a = QueryGenerator(space, kindex, graph=engine.graph, seed=5)
        b = QueryGenerator(space, kindex, graph=engine.graph, seed=5)
        pa = a.endpoints(100.0)
        pb = b.endpoints(100.0)
        assert pa[0] == pb[0] and pa[1] == pb[1]


class TestWorkload:
    def test_workload_shape(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=11)
        wl = gen.workload(s2t=120.0, eta=1.6, qw_size=3, beta=0.6,
                          k=5, instances=4)
        assert len(wl) == 4
        for q in wl:
            assert q.k == 5
            assert len(q.keywords) == 3
            assert q.delta > 0

    def test_delta_is_eta_times_separation(self, env):
        """Δ = η · δs2t guarantees every query admits some route."""
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=13)
        wl = gen.workload(s2t=120.0, eta=1.4, instances=3)
        for q in wl:
            real = engine.graph.point_to_point_distance(q.ps, q.pt)
            assert real <= q.delta + 1e-6

    def test_queries_are_answerable(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=17)
        wl = gen.workload(s2t=100.0, eta=1.8, qw_size=2, instances=3)
        for q in wl:
            answer = engine.search(q, "ToE")
            assert answer.routes, "workload query returned no route"

    def test_workload_iterable(self, env):
        space, kindex, engine = env
        gen = QueryGenerator(space, kindex, graph=engine.graph, seed=19)
        wl = gen.workload(instances=2, s2t=100.0)
        assert list(wl) == list(wl.queries)

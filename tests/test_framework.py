"""Tests for the search framework: connect, caps, stats, variants."""

import pytest

from repro.core import (
    IKRQ,
    IKRQEngine,
    SearchConfig,
    TopologyOrientedExpansion,
    IKRQSearch,
    canonical_algorithm,
    config_for,
)
from repro.core.engine import ALGORITHMS
from repro.geometry import Point


class TestAlgorithmRegistry:
    @pytest.mark.parametrize("alias,expected", [
        ("toe", "ToE"), ("KoE", "KoE"), ("koe*", "KoE*"),
        ("ToE\\D", "ToE-D"), ("koe\\b", "KoE-B"), ("toe-p", "ToE-P"),
        ("baseline", "naive"),
    ])
    def test_aliases(self, alias, expected):
        assert canonical_algorithm(alias) == expected

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            canonical_algorithm("dijkstra")

    def test_registry_complete(self):
        assert len(ALGORITHMS) == 8

    @pytest.mark.parametrize("name,dist,kb,prime", [
        ("ToE", True, True, True),
        ("ToE-D", False, True, True),
        ("ToE-B", True, False, True),
        ("ToE-P", True, True, False),
        ("KoE-D", False, True, True),
        ("KoE-B", True, False, True),
    ])
    def test_config_for(self, name, dist, kb, prime):
        cfg = config_for(name)
        assert cfg.use_distance_pruning is dist
        assert cfg.use_kbound_pruning is kb
        assert cfg.use_prime_pruning is prime

    def test_config_exhaustive_flag(self):
        assert config_for("ToE", exhaustive=True).expand_after_coverage
        assert not config_for("ToE").expand_after_coverage


class TestQueryValidation:
    def test_bad_delta(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=0.0, keywords=("x",))

    def test_bad_k(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=10.0, keywords=("x",), k=0)

    def test_bad_alpha(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=10.0,
                 keywords=("x",), alpha=1.5)

    def test_empty_keywords(self, fig1):
        with pytest.raises(ValueError):
            IKRQ(ps=fig1.ps, pt=fig1.pt, delta=10.0, keywords=())


class TestConnectBehaviour:
    def test_same_partition_trivial_route(self, fig1, fig1_engine):
        """ps and pt in one partition: the doorless route qualifies."""
        p1 = fig1.points["p1"]
        p1b = p1.translated(dx=3.0)
        answer = fig1_engine.query(p1, p1b, delta=50.0,
                                   keywords=["zara"], k=1, alpha=0.0)
        assert answer.routes
        best = answer.routes[0]
        assert best.route.doors == ()
        assert best.distance == pytest.approx(3.0)

    def test_expand_through_terminal_finds_through_routes(
            self, fig1, fig1_engine):
        """Routes passing v(pt) mid-way exist (Example 8's R2)."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=5, alpha=0.5)
        answer = fig1_engine.search(query, "ToE")
        v5 = fig1.pid("v5")
        through = [r for r in answer.routes
                   if list(r.route.vias).count(v5) > 1]
        assert through, "no route passes through the terminal partition"

    def test_disable_expand_through_terminal(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=5, alpha=0.5)
        cfg = SearchConfig(expand_through_terminal=False)
        answer = fig1_engine.search(query, "ToE", config=cfg)
        # Every returned route stops at its first terminal-partition
        # entry (except via keyword loops inside v5's neighbours).
        full = fig1_engine.search(query, "ToE")
        assert len(answer.routes) <= len(full.routes)

    def test_unreachable_terminal_returns_empty(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=5.0,
                     keywords=("latte",), k=1)
        answer = fig1_engine.search(query, "ToE")
        assert answer.routes == []


class TestExpansionCap:
    def test_cap_limits_pops(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=5)
        answer = fig1_engine.search(query, "ToE-P", max_expansions=10)
        assert answer.stats.stamps_popped <= 11

    def test_uncapped_by_default(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte",), k=1)
        answer = fig1_engine.search(query, "ToE")
        assert answer.stats.stamps_popped > 10


class TestStats:
    def test_counters_populated(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        answer = fig1_engine.search(query, "ToE")
        s = answer.stats
        assert s.stamps_created > 0
        assert s.stamps_popped > 0
        assert s.expansions > 0
        assert s.complete_routes > 0
        assert s.max_queue_len > 0
        assert s.peak_route_items > 0
        assert s.elapsed_seconds > 0
        assert s.estimated_peak_mb() > 0

    def test_pruning_counters_distance(self, fig1, fig1_engine):
        """A tight Δ exercises the distance rules."""
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=22.0,
                     keywords=("latte", "apple"), k=1)
        answer = fig1_engine.search(query, "ToE")
        s = answer.stats
        assert s.pruned_rule1 + s.pruned_rule2 + s.pruned_distance > 0

    def test_prime_pruning_counter(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=80.0,
                     keywords=("latte", "apple"), k=3)
        answer = fig1_engine.search(query, "ToE")
        assert answer.stats.pruned_rule5 > 0

    def test_as_dict_keys(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=40.0,
                     keywords=("latte",), k=1)
        d = fig1_engine.search(query, "ToE").stats.as_dict()
        assert {"stamps_popped", "pruned_rule5",
                "estimated_peak_mb"} <= set(d)

    def test_live_route_items_balanced(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte",), k=2)
        answer = fig1_engine.search(query, "ToE")
        assert answer.stats.live_route_items == 0  # queue fully drained


class TestQueryAnswer:
    def test_answer_accessors(self, fig1, fig1_engine):
        answer = fig1_engine.query(fig1.ps, fig1.pt, delta=60.0,
                                   keywords=["latte"], k=2)
        assert answer.best is answer.routes[0]
        assert answer.scores() == [r.score for r in answer.routes]
        assert answer.distances() == [r.distance for r in answer.routes]
        assert answer.algorithm == "ToE"

    def test_empty_answer_best_none(self, fig1, fig1_engine):
        answer = fig1_engine.query(fig1.ps, fig1.pt, delta=5.0,
                                   keywords=["latte"], k=1)
        assert answer.best is None

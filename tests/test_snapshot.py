"""Serve snapshots: round-trip equality, rebuild skipping, identity."""

from __future__ import annotations

import json

import pytest

from repro.core import IKRQ, IKRQEngine, PrimeTable
from repro.serve.snapshot import (SNAPSHOT_FORMAT, engine_from_snapshot,
                                  is_snapshot_document, load_snapshot,
                                  prime_from_snapshot, read_snapshot,
                                  save_snapshot, snapshot_to_dict)
from repro.serve.wire import answer_to_wire, canonical_json
from repro.space.graph import DoorGraph
from repro.space.serialize import space_to_dict
from repro.space.skeleton import SkeletonIndex


@pytest.fixture()
def warm_engine(fig1):
    """A fig1 engine with the door matrix built (warm rows to persist)."""
    engine = IKRQEngine(fig1.space, fig1.kindex)
    engine.door_matrix()
    return engine


@pytest.fixture()
def roundtripped(warm_engine, tmp_path):
    path = tmp_path / "snapshot.json"
    save_snapshot(path, warm_engine)
    return warm_engine, load_snapshot(path), read_snapshot(path)


class TestRoundTrip:
    def test_document_shape(self, roundtripped):
        _, _, doc = roundtripped
        assert is_snapshot_document(doc)
        assert set(doc) >= {"format", "version", "venue", "graph",
                            "skeleton", "door_matrix", "prime", "engine"}

    def test_venue_round_trips(self, roundtripped):
        engine, loaded, doc = roundtripped
        assert doc["venue"] == space_to_dict(engine.space, engine.kindex)
        assert (space_to_dict(loaded.space, loaded.kindex)
                == space_to_dict(engine.space, engine.kindex))

    def test_csr_arrays_round_trip(self, roundtripped):
        engine, loaded, _ = roundtripped
        assert loaded.graph.csr_arrays() == engine.graph.csr_arrays()

    def test_skeleton_round_trips(self, roundtripped):
        engine, loaded, _ = roundtripped
        assert loaded.skeleton.export() == engine.skeleton.export()

    def test_warm_matrix_rows_round_trip(self, roundtripped):
        engine, loaded, _ = roundtripped
        assert loaded._matrix is not None
        assert loaded._matrix.warm_rows() == engine._matrix.warm_rows()

    def test_matrix_row_cap(self, warm_engine, tmp_path):
        path = tmp_path / "capped.json"
        save_snapshot(path, warm_engine, matrix_rows=3)
        loaded = load_snapshot(path)
        assert loaded._matrix.num_cached_rows() == 3
        # The hottest (most recently used) rows are the ones kept, and
        # the list encoding preserves their LRU order across the
        # sorted-keys JSON dump.
        full = warm_engine._matrix.warm_rows()
        kept = loaded._matrix.warm_rows()
        assert list(kept) == list(full)[-3:]
        assert kept == {src: full[src] for src in kept}

    def test_prime_table_round_trips(self, warm_engine, tmp_path):
        prime = PrimeTable()
        prime.update(3, (1, 2), 12.5)
        prime.update(-1, (1,), 4.0)
        path = tmp_path / "prime.json"
        save_snapshot(path, warm_engine, prime=prime)
        restored = prime_from_snapshot(read_snapshot(path))
        assert restored.export_entries() == prime.export_entries()
        assert restored.best(3, (1, 2)) == 12.5

    def test_skeleton_round_trip_multi_floor(self):
        """δs2s (with unreachable-pair infinities) survives JSON."""
        from repro.bench import experiments as E
        engine = E.synthetic_env(floors=2, scale=0.08, seed=1).engine
        doc = snapshot_to_dict(engine)
        restored = engine_from_snapshot(doc)
        assert restored.skeleton.export() == engine.skeleton.export()
        doors = sorted(engine.space.doors)[:6]
        for di in doors:
            for dj in doors:
                assert (restored.skeleton.lower_bound(di, dj)
                        == engine.skeleton.lower_bound(di, dj))


class TestColdStart:
    def test_load_skips_index_builds(self, warm_engine, tmp_path):
        path = tmp_path / "snapshot.json"
        save_snapshot(path, warm_engine)
        csr_before = DoorGraph.csr_builds
        s2s_before = SkeletonIndex.s2s_builds
        loaded = load_snapshot(path)
        assert DoorGraph.csr_builds == csr_before
        assert SkeletonIndex.s2s_builds == s2s_before
        # A from-scratch engine does pay both builds.
        IKRQEngine(loaded.space, loaded.kindex)
        assert DoorGraph.csr_builds == csr_before + 1
        assert SkeletonIndex.s2s_builds == s2s_before + 1

    def test_warm_rows_do_not_recompute(self, warm_engine, tmp_path):
        path = tmp_path / "snapshot.json"
        save_snapshot(path, warm_engine)
        loaded = load_snapshot(path)
        assert (loaded._matrix.num_cached_rows()
                == warm_engine._matrix.num_cached_rows())
        assert loaded.door_matrix() is loaded._matrix


class TestIdentity:
    @pytest.mark.parametrize("algorithm", ["ToE", "KoE", "KoE*"])
    def test_loaded_engine_answers_byte_identically(
            self, fig1, warm_engine, tmp_path, algorithm):
        path = tmp_path / "snapshot.json"
        save_snapshot(path, warm_engine)
        loaded = load_snapshot(path)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        expected = canonical_json(
            answer_to_wire(warm_engine.search(query, algorithm)))
        got = canonical_json(
            answer_to_wire(loaded.search(query, algorithm)))
        assert got == expected


class TestValidation:
    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            engine_from_snapshot({"format": "something-else"})

    def test_rejects_unknown_version(self, warm_engine):
        doc = snapshot_to_dict(warm_engine)
        doc["version"] = 999
        with pytest.raises(ValueError):
            engine_from_snapshot(doc)

    def test_read_snapshot_rejects_venue_file(self, warm_engine, tmp_path):
        path = tmp_path / "venue.json"
        path.write_text(json.dumps(
            space_to_dict(warm_engine.space, warm_engine.kindex)))
        with pytest.raises(ValueError, match=SNAPSHOT_FORMAT):
            read_snapshot(path)

    def test_requires_keyword_index(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        doc = snapshot_to_dict(engine)
        del doc["venue"]["keywords"]
        with pytest.raises(ValueError, match="keyword index"):
            engine_from_snapshot(doc)

"""Tests for route directions, SVG rendering and the venue CLI."""

import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.core import IKRQ
from repro.core.directions import directions, render_directions
from repro.viz import RouteStyle, render_svg, save_svg


@pytest.fixture
def answer_ctx(fig1, fig1_engine):
    query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                 keywords=("latte", "apple"), k=3, alpha=0.5)
    answer = fig1_engine.search(query, "ToE")
    return answer, fig1_engine.context(query)


class TestDirections:
    def test_steps_cover_route(self, answer_ctx):
        answer, ctx = answer_ctx
        best = answer.routes[0].route
        steps = directions(ctx, best)
        assert steps[0].kind == "start"
        assert steps[-1].kind == "arrive"
        assert len(steps) == best.num_items

    def test_distances_sum_to_route_distance(self, answer_ctx):
        answer, ctx = answer_ctx
        best = answer.routes[0].route
        steps = directions(ctx, best)
        assert sum(s.distance for s in steps) == pytest.approx(best.distance)

    def test_keyword_pickups_unique(self, answer_ctx):
        answer, ctx = answer_ctx
        best = answer.routes[0].route
        steps = directions(ctx, best)
        picked = [w for s in steps for w in s.picked_keywords]
        assert len(picked) == len(set(picked))
        # The best route covers latte (via costa).
        assert "latte" in picked

    def test_revisit_step_for_loop(self, fig1, fig1_engine):
        query = IKRQ(ps=fig1.points["p1"], pt=fig1.points["p2"],
                     delta=150.0, keywords=("apple",), k=1, alpha=0.9)
        answer = fig1_engine.search(query, "ToE")
        ctx = fig1_engine.context(query)
        steps = directions(ctx, answer.routes[0].route)
        assert any(s.kind == "revisit" for s in steps)

    def test_render_text(self, answer_ctx):
        answer, ctx = answer_ctx
        text = render_directions(ctx, answer.routes[0].route)
        assert text.startswith("1. start in")
        assert "total:" in text


class TestSvg:
    def test_basic_document(self, fig1):
        svg = render_svg(fig1.space, kindex=fig1.kindex)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "costa" in svg           # keyword label
        assert svg.count("<rect") >= 13  # 12 partitions + background

    def test_route_overlay(self, fig1, answer_ctx):
        answer, ctx = answer_ctx
        svg = render_svg(fig1.space, routes=[answer.routes[0].route],
                         route_styles=[RouteStyle("#ff0000", label="best")],
                         markers=[("ps", fig1.ps), ("pt", fig1.pt)])
        assert "polyline" in svg
        assert "best" in svg
        assert ">ps<" in svg

    def test_empty_floor_rejected(self, fig1):
        with pytest.raises(ValueError):
            render_svg(fig1.space, floor=7)

    def test_save(self, fig1, tmp_path):
        out = save_svg(tmp_path / "plan.svg", render_svg(fig1.space))
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_escaping(self, fig1):
        # Labels with XML specials must be escaped, not break the doc.
        svg = render_svg(fig1.space, markers=[("<&>", fig1.ps)])
        assert "&lt;&amp;&gt;" in svg


class TestVenueCli:
    @pytest.fixture(scope="class")
    def venue_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "venue.json"
        assert repro_main(["export-fig1", str(path)]) == 0
        return path

    def test_info(self, venue_file, capsys):
        assert repro_main(["info", str(venue_file)]) == 0
        out = capsys.readouterr().out
        assert "12 partitions" in out
        assert "8 i-words" in out

    def test_query(self, venue_file, capsys):
        code = repro_main([
            "query", str(venue_file),
            "--from", "7.4,39.5,0", "--to", "23.3,31.4,0",
            "--delta", "60", "--keywords", "latte,apple", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "ψ=" in out

    def test_query_directions(self, venue_file, capsys):
        code = repro_main([
            "query", str(venue_file),
            "--from", "7.4,39.5,0", "--to", "23.3,31.4,0",
            "--delta", "60", "--keywords", "latte", "--directions"])
        assert code == 0
        assert "start in" in capsys.readouterr().out

    def test_query_infeasible(self, venue_file, capsys):
        code = repro_main([
            "query", str(venue_file),
            "--from", "7.4,39.5,0", "--to", "23.3,31.4,0",
            "--delta", "5", "--keywords", "latte"])
        assert code == 1

    def test_render(self, venue_file, tmp_path, capsys):
        out_file = tmp_path / "floor.svg"
        code = repro_main([
            "render", str(venue_file), "--out", str(out_file),
            "--from", "7.4,39.5,0", "--to", "23.3,31.4,0",
            "--delta", "60", "--keywords", "latte"])
        assert code == 0
        assert out_file.read_text().startswith("<svg")

    def test_bad_point_rejected(self, venue_file):
        with pytest.raises(SystemExit):
            repro_main(["query", str(venue_file),
                        "--from", "nope", "--to", "1,2",
                        "--keywords", "latte"])

    def test_module_entry_point(self, venue_file):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info", str(venue_file)],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "12 partitions" in result.stdout

"""Tests for the RAKE extractor and TF-IDF keyword selection."""

import pytest

from repro.keywords.extraction import (
    RakeExtractor,
    TfIdfSelector,
    extract_twords,
)


class TestRakePhrases:
    def test_splits_at_stopwords(self):
        rake = RakeExtractor()
        phrases = rake.candidate_phrases(
            "fresh coffee beans and handmade chocolate cake")
        assert ("fresh", "coffee", "beans") in phrases
        assert ("handmade", "chocolate", "cake") in phrases

    def test_splits_at_punctuation(self):
        rake = RakeExtractor()
        phrases = rake.candidate_phrases("espresso, latte; mocha. beans")
        flat = [w for p in phrases for w in p]
        assert flat == ["espresso", "latte", "mocha", "beans"]

    def test_short_words_dropped(self):
        rake = RakeExtractor(min_word_len=3)
        phrases = rake.candidate_phrases("go to xy coffee")
        assert ("coffee",) in phrases
        assert all("xy" not in p for p in phrases)

    def test_numeric_tokens_dropped(self):
        rake = RakeExtractor()
        phrases = rake.candidate_phrases("open 24 hours daily")
        flat = [w for p in phrases for w in p]
        assert "24" not in flat

    def test_long_phrases_capped(self):
        rake = RakeExtractor(max_phrase_words=2)
        phrases = rake.candidate_phrases(
            "premium organic arabica coffee")  # 4 content words
        assert phrases == []

    def test_case_insensitive(self):
        rake = RakeExtractor()
        phrases = rake.candidate_phrases("Fresh COFFEE")
        assert phrases == [("fresh", "coffee")]


class TestRakeScoring:
    def test_degree_over_frequency(self):
        rake = RakeExtractor()
        # "coffee" appears in two phrases, once alone and once paired.
        phrases = [("coffee",), ("coffee", "beans")]
        scores = rake.word_scores(phrases)
        # freq(coffee)=2, degree adds 1 from the pair: (1 + 2) / 2.
        assert scores["coffee"] == pytest.approx(1.5)
        assert scores["beans"] == pytest.approx(2.0)

    def test_extract_ranks_phrases(self):
        rake = RakeExtractor()
        out = rake.extract(
            "arabica coffee beans. coffee. best beans and arabica coffee beans")
        assert out[0].phrase == "arabica coffee beans"
        assert out[0].score >= out[-1].score

    def test_extract_top_n(self):
        rake = RakeExtractor()
        out = rake.extract("espresso. latte. mocha. flat white", top_n=2)
        assert len(out) == 2

    def test_extract_empty_text(self):
        rake = RakeExtractor()
        assert rake.extract("") == []
        assert rake.extract_words("the and of") == []

    def test_extract_words_single_tokens(self):
        rake = RakeExtractor()
        words = rake.extract_words("dark roast coffee and light roast tea")
        assert set(words) >= {"dark", "roast", "coffee", "tea"}

    def test_scored_phrase_words(self):
        rake = RakeExtractor()
        sp = rake.extract("fresh coffee")[0]
        assert sp.words == ("fresh", "coffee")


class TestTfIdf:
    def test_idf_decreases_with_frequency(self):
        sel = TfIdfSelector()
        sel.fit([["common", "rare1"], ["common", "rare2"], ["common"]])
        assert sel.idf("common") < sel.idf("rare1")

    def test_select_caps_count(self):
        sel = TfIdfSelector(max_keywords=2)
        sel.fit([["a", "b", "c"]])
        assert len(sel.select(["a", "b", "c"])) == 2

    def test_select_prefers_distinctive(self):
        sel = TfIdfSelector(max_keywords=1)
        docs = [["ubiquitous", "special"]] + [["ubiquitous"]] * 8
        sel.fit(docs)
        assert sel.select(["ubiquitous", "special"]) == ["special"]

    def test_max_df_drops_boilerplate(self):
        sel = TfIdfSelector(max_keywords=10, max_df=0.5)
        docs = [["store", f"unique{i}"] for i in range(10)]
        sel.fit(docs)
        assert "store" not in sel.select(["store", "unique1"])

    def test_select_empty(self):
        sel = TfIdfSelector()
        sel.fit([])
        assert sel.select([]) == []

    def test_idf_before_fit_is_zero(self):
        assert TfIdfSelector().idf("x") == 0.0


class TestPipeline:
    def test_extract_twords_end_to_end(self):
        docs = {
            "costa": "fresh coffee and mocha. enjoy our coffee beans",
            "apple": "latest phone and laptop. the famous retina laptop",
        }
        out = extract_twords(docs)
        assert "coffee" in out["costa"]
        assert "laptop" in out["apple"]

    def test_brands_without_keywords_dropped(self):
        docs = {"ghost": "the of and is", "real": "premium leather shoes"}
        out = extract_twords(docs)
        assert "ghost" not in out
        assert "real" in out

    def test_max_twords_respected(self):
        text = ". ".join(f"keyword{i}" for i in range(100))
        out = extract_twords({"brand": text}, max_twords=10)
        assert len(out["brand"]) == 10

    def test_max_df_filters_across_brands(self):
        docs = {f"brand{i}": f"store special{i}" for i in range(10)}
        out = extract_twords(docs, max_df=0.3)
        for words in out.values():
            assert "store" not in words

"""QueryService, algorithm aliases, the door-matrix budget, and the
early-exit fix of the unified Dijkstra."""

from __future__ import annotations

import math

import pytest

from repro.core import IKRQ, IKRQEngine, QueryService, canonical_algorithm
from repro.core.engine import _ALIASES, ALGORITHMS
from repro.space import DoorGraph
from repro.space.graph import DoorMatrix

INF = math.inf


# ----------------------------------------------------------------------
# Algorithm aliases
# ----------------------------------------------------------------------
class TestAliases:
    @pytest.mark.parametrize("alias", sorted(_ALIASES))
    def test_every_alias_resolves(self, alias):
        canonical = canonical_algorithm(alias)
        assert canonical in ALGORITHMS + ("naive",)
        assert canonical == _ALIASES[alias]

    @pytest.mark.parametrize("alias", sorted(_ALIASES))
    def test_aliases_are_case_insensitive(self, alias):
        assert canonical_algorithm(alias.upper()) == _ALIASES[alias]

    def test_paper_spellings(self):
        assert canonical_algorithm("ToE\\D") == "ToE-D"
        assert canonical_algorithm("KoE\\B") == "KoE-B"
        assert canonical_algorithm("KoE*") == "KoE*"

    def test_unknown_name_lists_canonicals_and_aliases(self):
        with pytest.raises(ValueError) as err:
            canonical_algorithm("bogus")
        message = str(err.value)
        for canonical in ALGORITHMS + ("naive",):
            assert canonical in message
        # Paper spellings and other non-trivial aliases are listed too.
        for alias in ("toe\\d", "koe\\b", "koestar", "baseline"):
            assert alias in message


# ----------------------------------------------------------------------
# Unified Dijkstra early exit (targets already settled at entry)
# ----------------------------------------------------------------------
class TestDijkstraEarlyExit:
    def test_source_only_target_explores_nothing(self, fig1):
        graph = DoorGraph(fig1.space)
        d1 = fig1.did("d1")
        dist, pred = graph.dijkstra(d1, targets={d1})
        assert dist == {d1: 0.0}
        assert pred == {}

    def test_empty_target_set_explores_nothing(self, fig1):
        graph = DoorGraph(fig1.space)
        d1 = fig1.did("d1")
        dist, pred = graph.dijkstra(d1, targets=set())
        assert dist == {d1: 0.0}
        assert pred == {}

    def test_workspace_reuse_is_isolated(self, fig1):
        """Runs sharing one workspace equal runs on fresh workspaces."""
        graph = DoorGraph(fig1.space)
        shared = graph.new_workspace()
        doors = sorted(fig1.space.doors)[:6]
        for source in doors:
            reused = graph.dijkstra(source, workspace=shared)
            fresh = graph.dijkstra(source, workspace=graph.new_workspace())
            assert reused == fresh


# ----------------------------------------------------------------------
# Memory-budgeted DoorMatrix + engine eagerness
# ----------------------------------------------------------------------
class TestDoorMatrixBudget:
    def test_cap_evicts_lru(self, fig1):
        graph = DoorGraph(fig1.space)
        matrix = DoorMatrix(graph, max_rows=2)
        doors = sorted(fig1.space.doors)[:4]
        for did in doors:
            matrix.distance(did, doors[0])
        assert matrix.num_cached_rows() == 2
        assert matrix.evictions == 2

    def test_lru_order_keeps_hot_rows(self, fig1):
        graph = DoorGraph(fig1.space)
        matrix = DoorMatrix(graph, max_rows=2)
        a, b, c = sorted(fig1.space.doors)[:3]
        matrix.distance(a, b)
        matrix.distance(b, a)
        matrix.distance(a, c)   # refresh a: b becomes the LRU row
        matrix.distance(c, a)   # evicts b
        assert matrix.evictions == 1
        assert set(matrix._rows) == {a, c}

    def test_evicted_rows_recompute_identically(self, fig1):
        graph = DoorGraph(fig1.space)
        budget = DoorMatrix(graph, max_rows=1)
        free = DoorMatrix(graph)
        doors = sorted(fig1.space.doors)[:5]
        for di in doors:
            for dj in doors:
                assert budget.distance(di, dj) == free.distance(di, dj)
                assert budget.route(di, dj) == free.route(di, dj)

    def test_eager_respects_cap(self, fig1):
        graph = DoorGraph(fig1.space)
        matrix = DoorMatrix(graph, eager=True, max_rows=3)
        assert matrix.num_cached_rows() == 3
        # Budgeted eager prefill stops at the cap instead of computing
        # every row and evicting most of them.
        assert matrix.evictions == 0

    def test_default_workspace_is_thread_local(self, fig1):
        import threading
        graph = DoorGraph(fig1.space)
        seen = {}

        def grab(name):
            seen[name] = graph.workspace

        threads = [threading.Thread(target=grab, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen[0] is not seen[1]
        assert graph.workspace is graph.workspace

    def test_invalid_cap_rejected(self, fig1):
        graph = DoorGraph(fig1.space)
        with pytest.raises(ValueError):
            DoorMatrix(graph, max_rows=0)

    def test_engine_eagerness_is_configurable(self, fig1):
        lazy = IKRQEngine(fig1.space, fig1.kindex, door_matrix_eager=False)
        assert lazy.door_matrix().num_cached_rows() == 0
        eager = IKRQEngine(fig1.space, fig1.kindex)
        assert (eager.door_matrix().num_cached_rows()
                == fig1.space.num_doors)

    def test_engine_budget_reaches_koestar_stats(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex,
                            door_matrix_max_rows=2)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee", "apple"), k=2)
        first = engine.search(query, "KoE*")
        assert engine.door_matrix().num_cached_rows() <= 2
        assert engine.door_matrix().evictions > 0
        # Per-search stat counts this search's evictions, not the
        # engine-held matrix's lifetime total.
        assert first.stats.matrix_evictions > 0
        second = engine.search(query, "KoE*")
        assert (first.stats.matrix_evictions + second.stats.matrix_evictions
                == engine.door_matrix().evictions)
        # The budgeted matrix must not change results.
        unbudgeted = IKRQEngine(fig1.space, fig1.kindex)
        reference = unbudgeted.search(query, "KoE*")
        assert ([(r.kp, r.distance, r.score) for r in second.routes]
                == [(r.kp, r.distance, r.score) for r in reference.routes])


# ----------------------------------------------------------------------
# QueryService plumbing
# ----------------------------------------------------------------------
@pytest.fixture
def service_setup(fig1):
    engine = IKRQEngine(fig1.space, fig1.kindex)
    queries = [
        IKRQ(ps=fig1.ps, pt=fig1.pt, delta=55.0 + 5.0 * i,
             keywords=("coffee",) if i % 2 else ("latte", "apple"), k=2)
        for i in range(6)
    ]
    return engine, queries


class TestQueryService:
    def test_validation(self, service_setup):
        engine, _ = service_setup
        with pytest.raises(ValueError):
            QueryService(engine, workers=0)
        with pytest.raises(ValueError):
            QueryService(engine, point_map_capacity=0)
        with pytest.raises(ValueError):
            QueryService(engine, answer_cache_capacity=-1)
        service = QueryService(engine)
        with pytest.raises(ValueError):
            service.search_batch([], workers=0)

    def test_single_search_counts(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=1)
        answer = service.search(queries[0])
        assert answer.routes
        assert service.stats.queries_served == 1
        assert service.stats.point_map_misses == 1

    def test_endpoint_lru_is_shared(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=1)
        service.search_batch(queries)
        assert service.stats.point_map_misses == 1
        assert service.stats.point_map_hits == len(queries) - 1
        # Start-point continuations were served from the shared map.
        assert service.stats.keyword_cache_misses == 2

    def test_point_map_capacity_evicts(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        service = QueryService(engine, workers=1, point_map_capacity=1,
                               answer_cache_capacity=0)
        q1 = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0, keywords=("coffee",))
        q2 = IKRQ(ps=fig1.pt, pt=fig1.ps, delta=60.0, keywords=("coffee",))
        service.search(q1)
        service.search(q2)
        service.search(q1)
        assert service.stats.point_map_misses == 3
        assert len(service._point_maps) == 1

    def test_answer_cache_can_be_disabled(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=1, answer_cache_capacity=0)
        service.search_batch([queries[0]] * 4)
        assert service.stats.answer_hits == 0
        assert service.stats.answer_misses == 0
        assert service.stats.queries_served == 4

    def test_batch_preserves_order(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=3)
        batched = service.search_batch(queries, workers=3)
        assert [a.query for a in batched] == queries

    def test_naive_through_service(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=2)
        batched = service.search_batch(queries[:3], "naive")
        sequential = [engine.search(q, "naive") for q in queries[:3]]
        assert ([[(r.kp, r.distance) for r in a.routes] for a in batched]
                == [[(r.kp, r.distance) for r in a.routes]
                    for a in sequential])

    def test_endpoint_entry_carries_terminal_map(self, service_setup):
        """The (ps, pt) LRU shares the terminal-side attachment map the
        connect step pre-checks completions against."""
        engine, queries = service_setup
        service = QueryService(engine, workers=1)
        answer = service.search(queries[0])
        assert answer.routes
        entry = next(iter(service._point_maps.values()))
        query = queries[0]
        space = engine.space
        v_pt = space.host_partition(query.pt).pid
        expected = {door: space.door(door).position.distance_to(query.pt)
                    for door in space.p2d_enter(v_pt)}
        assert entry["terminal_attach"] == expected
        # A bare context computes the identical map on demand.
        ctx = engine.context(query)
        assert ctx.terminal_attachments() == expected

    def test_terminal_map_shared_results_identical(self, service_setup):
        engine, queries = service_setup
        service = QueryService(engine, workers=1, answer_cache_capacity=0)
        served = [service.search(q) for q in queries]
        direct = [engine.search(q) for q in queries]
        assert ([[(r.kp, r.distance, r.score) for r in a.routes]
                 for a in served]
                == [[(r.kp, r.distance, r.score) for r in a.routes]
                    for a in direct])

    def test_point_cache_hits_recorded_in_search_stats(self, service_setup):
        """KoE's first expansion (point tail, empty banned set) is
        served from the shared start-attachment map."""
        engine, queries = service_setup
        service = QueryService(engine, workers=1,
                               answer_cache_capacity=0)
        answer = service.search(queries[0], "KoE")
        assert answer.stats.point_cache_hits > 0
        direct = engine.search(queries[0], "KoE")
        assert direct.stats.point_cache_hits == 0
        assert ([(r.kp, r.distance, r.score) for r in answer.routes]
                == [(r.kp, r.distance, r.score) for r in direct.routes])


class TestThroughputBench:
    def test_smoke_run_verifies_and_wins(self):
        from repro.bench.throughput import run_throughput
        result = run_throughput(venue="fig1", pool=4, repeat=3,
                                endpoints=2, workers=1, seed=5)
        assert result["verified_identical"]
        assert result["queries"] == 12
        assert result["batched_qps"] > 0
        assert result["sequential_qps"] > 0

"""Supervision, crash failover and deterministic fault injection.

Every pool here runs with fast supervision clocks (tens of
milliseconds) so the crash → detect → fail-pending → respawn cycle
completes in test time; production defaults are seconds.  Faults are
injected deterministically through :class:`FaultPlan` — no external
``kill`` racing the request stream — so each test exercises one exact
window (crash before the reply, crash during an ingest load, a stall,
a deterministic load failure, a crash loop).
"""

from __future__ import annotations

import time

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.serve import (AdmissionController, DEFAULT_VENUE, FaultPlan,
                         ShardDispatcher, ShardPool, TenantQuota,
                         answer_to_wire, canonical_json, load_snapshot,
                         query_to_wire, save_snapshot, shard_for)
from repro.serve.faults import FaultRule


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    from repro.datasets import paper_fig1
    fixture = paper_fig1()
    engine = IKRQEngine(fixture.space, fixture.kindex)
    path = tmp_path_factory.mktemp("faults") / "fig1.snapshot.json"
    save_snapshot(path, engine)
    return str(path)


@pytest.fixture(scope="module")
def engine(snapshot_path):
    return load_snapshot(snapshot_path)


@pytest.fixture(scope="module")
def query_doc(fig1):
    return query_to_wire(IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                              keywords=("latte", "apple"), k=3))


def _expected(engine, query_doc, algorithm="ToE"):
    from repro.serve import query_from_wire
    return canonical_json(
        answer_to_wire(engine.search(query_from_wire(query_doc),
                                     algorithm)))


def _got(response):
    return canonical_json({"algorithm": response["algorithm"],
                           "routes": response["routes"]})


def _fast_pool(snapshot_path, plan, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("heartbeat_timeout", 5.0)
    kwargs.setdefault("restart_backoff_s", 0.05)
    kwargs.setdefault("restart_backoff_max_s", 0.2)
    return ShardPool(snapshot_path, fault_plan=plan, **kwargs)


@pytest.mark.slow
class TestCrashFailover:
    def test_crash_mid_request_fails_fast_and_fails_over(
            self, snapshot_path, engine, query_doc):
        affinity = shard_for(query_doc["ps"], query_doc["pt"], 2)
        sibling = 1 - affinity
        # The affinity shard dies *between* dequeuing the first search
        # and replying; the restart (boot 1) is clean.
        plan = FaultPlan().crash_before_reply(affinity, index=0, to_boot=0)
        pool = _fast_pool(snapshot_path, plan)
        try:
            dispatcher = ShardDispatcher(pool, failover_retries=1)
            started = time.monotonic()
            response = dispatcher.submit(query_doc)
            elapsed = time.monotonic() - started
            # Fast failure + failover: nowhere near the 300 s RPC
            # timeout the pre-supervision pool would have burned.
            assert response["status"] == "ok"
            assert elapsed < 30.0
            assert response["shard"] == sibling
            assert dispatcher.failovers >= 1
            assert _got(response) == _expected(engine, query_doc)
            # The supervisor replaces the crashed worker; once it is
            # back, the affinity shard serves byte-identical answers.
            assert pool.wait_all_up(timeout=20.0)
            assert pool.restarts_total >= 1
            response = dispatcher.submit(query_doc)
            assert response["status"] == "ok"
            assert response["shard"] == affinity
            assert _got(response) == _expected(engine, query_doc)
        finally:
            pool.close()

    def test_pool_call_fast_shard_down_without_failover(
            self, snapshot_path, query_doc):
        plan = FaultPlan().crash_before_reply(0, every=True, to_boot=0)
        pool = _fast_pool(snapshot_path, plan)
        try:
            started = time.monotonic()
            response = pool.call(0, {"kind": "search", "query": query_doc,
                                     "venue": DEFAULT_VENUE,
                                     "generation": 1}, timeout=60.0)
            assert response["status"] == "shard_down"
            assert response["shard"] == 0
            assert time.monotonic() - started < 15.0
        finally:
            pool.close()

    def test_stalled_worker_hits_heartbeat_timeout_and_restarts(
            self, snapshot_path, engine, query_doc):
        plan = FaultPlan().stall(0, index=0, seconds=60.0, to_boot=0)
        pool = _fast_pool(snapshot_path, plan, heartbeat_interval=0.05,
                          heartbeat_timeout=0.5)
        try:
            response = pool.call(0, {"kind": "search", "query": query_doc,
                                     "venue": DEFAULT_VENUE,
                                     "generation": 1}, timeout=30.0)
            # The stall detector declares the hung worker dead and
            # sweeps the pending call — no reply ever comes from it.
            assert response["status"] == "shard_down"
            assert pool.wait_all_up(timeout=20.0)
            assert pool.restarts_total >= 1
            response = pool.call(0, {"kind": "search", "query": query_doc,
                                     "venue": DEFAULT_VENUE,
                                     "generation": 1}, timeout=60.0)
            assert response["status"] == "ok"
            assert _got(response) == _expected(engine, query_doc)
        finally:
            pool.close()


@pytest.mark.slow
class TestQuarantine:
    def test_crash_loop_exhausts_budget_and_quarantines(
            self, snapshot_path, engine, query_doc):
        # Initial boot is fine; every *restart* dies before loading
        # anything — the canonical crash loop.
        plan = FaultPlan().crash_on_start(0)
        pool = _fast_pool(snapshot_path, plan, restart_budget=2,
                          restart_window_s=60.0)
        try:
            dispatcher = ShardDispatcher(pool, failover_retries=1)
            pool.kill_shard(0)
            deadline = time.monotonic() + 30.0
            while (pool.shard_state(0) != "quarantined"
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert pool.shard_state(0) == "quarantined"
            assert pool.restarts_total == 2
            assert pool.live_shards() == [1]
            assert not pool.alive()
            # The half-dead pool still serves: shard-0 affinity
            # traffic is rerouted to the survivor, byte-identical.
            for _ in range(4):
                response = dispatcher.submit(query_doc)
                assert response["status"] == "ok"
                assert response["shard"] == 1
                assert _got(response) == _expected(engine, query_doc)
        finally:
            pool.close()


@pytest.mark.slow
class TestIngestUnderFailure:
    def test_worker_death_mid_ingest_keeps_venue_consistent(
            self, snapshot_path, engine, query_doc):
        # Load op index 1 is the ingest broadcast (index 0 was the
        # boot-time load); the crash is capped to boot 0 so the
        # replacement's warm-restart reloads are clean.
        plan = FaultPlan().crash_before_reply(1, op="load", index=1,
                                              to_boot=0)
        pool = _fast_pool(snapshot_path, plan)
        try:
            dispatcher = ShardDispatcher(pool, failover_retries=1)
            report = dispatcher.ingest(DEFAULT_VENUE, snapshot_path,
                                       load_timeout=60.0)
            # The flip proceeds on the survivor instead of wedging the
            # venue between generations.
            assert report["status"] == "ok"
            assert report["generation"] == 2
            assert report["shards_down"] == 1
            assert report["shards_loaded"] == 1
            assert (dispatcher.registry.active_generation(DEFAULT_VENUE)
                    == 2)
            # The replacement warm-restarts onto the new generation
            # from the assignment manifest and serves it identically.
            assert pool.wait_all_up(timeout=20.0)
            assert set(pool.assignments()) == {(DEFAULT_VENUE, 2)}
            for shard in (0, 1):
                response = pool.call(
                    shard, {"kind": "search", "query": query_doc,
                            "venue": DEFAULT_VENUE, "generation": 2},
                    timeout=60.0)
                assert response["status"] == "ok"
                assert _got(response) == _expected(engine, query_doc)
            response = dispatcher.submit(query_doc)
            assert response["status"] == "ok"
            assert response["generation"] == 2
        finally:
            pool.close()

    def test_deterministic_load_failure_still_aborts_ingest(
            self, snapshot_path, query_doc):
        plan = FaultPlan().reject_load(1, index=1, to_boot=0)
        pool = _fast_pool(snapshot_path, plan)
        try:
            dispatcher = ShardDispatcher(pool)
            report = dispatcher.ingest(DEFAULT_VENUE, snapshot_path)
            # A *deterministic* load failure (bad snapshot) is not a
            # crash: all-or-nothing still holds, nobody restarts.
            assert report["status"] == "error"
            assert (dispatcher.registry.active_generation(DEFAULT_VENUE)
                    == 1)
            assert pool.restarts_total == 0
            assert pool.alive()
            response = dispatcher.submit(query_doc)
            assert response["status"] == "ok"
            assert response["generation"] == 1
        finally:
            pool.close()


@pytest.mark.slow
class TestTeardownAndLateResponses:
    def test_close_escalates_past_a_stuck_worker(self, snapshot_path,
                                                 query_doc):
        # heartbeat_timeout=0 disables the stall detector: the worker
        # sits in a 60 s sleep when close() runs, so the cooperative
        # shutdown sentinel is never read and teardown must escalate.
        plan = FaultPlan().stall(0, index=0, seconds=60.0)
        pool = _fast_pool(snapshot_path, plan, heartbeat_timeout=0.0)
        response = pool.call(0, {"kind": "search", "query": query_doc,
                                 "venue": DEFAULT_VENUE, "generation": 1},
                             timeout=0.2)
        assert response["status"] == "timeout"
        started = time.monotonic()
        pool.close(join_timeout=1.0)
        assert time.monotonic() - started < 10.0
        assert all(not worker["alive"] for worker in pool.shard_states())

    def test_late_response_is_counted_not_dropped(self, snapshot_path,
                                                  query_doc):
        plan = FaultPlan().stall(0, index=0, seconds=0.4)
        pool = _fast_pool(snapshot_path, plan, heartbeat_timeout=0.0)
        try:
            response = pool.call(0, {"kind": "search", "query": query_doc,
                                     "venue": DEFAULT_VENUE,
                                     "generation": 1}, timeout=0.05)
            assert response["status"] == "timeout"
            deadline = time.monotonic() + 10.0
            while pool.late_responses == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.late_responses == 1
        finally:
            pool.close()


class TestDegradedAdmission:
    def test_capacity_fraction_scales_pool_bound(self):
        admission = AdmissionController(max_pending=4)
        assert admission.try_acquire("v", capacity_fraction=0.5)
        assert admission.try_acquire("v", capacity_fraction=0.5)
        # ceil(4 * 0.5) = 2: the third concurrent request sheds.
        assert not admission.try_acquire("v", capacity_fraction=0.5)
        assert admission.try_acquire("v", capacity_fraction=1.0)
        admission.release("v")
        admission.release("v")
        admission.release("v")

    def test_capacity_fraction_scales_quota_and_floors_at_one(self):
        admission = AdmissionController(
            max_pending=8, default_quota=TenantQuota(max_in_flight=2))
        # ceil(2 * 0.5) = 1 per venue — but never zero: even at a tiny
        # live fraction another venue still gets one slot (the pool
        # bound scales too, ceil(8 * 0.25) = 2, so "b" fits).
        assert admission.try_acquire("a", capacity_fraction=0.5)
        assert not admission.try_acquire("a", capacity_fraction=0.5)
        assert admission.try_acquire("b", capacity_fraction=0.25)
        admission.release("a")
        admission.release("b")

    def test_tiny_fraction_floors_at_one_slot(self):
        # Even with one live shard in a huge fleet, the pool must
        # admit *something* — max(1, ceil(...)) never reaches zero.
        admission = AdmissionController(max_pending=100)
        assert admission.try_acquire("v", capacity_fraction=0.001)
        assert not admission.try_acquire("v", capacity_fraction=0.001)
        admission.release("v")

    def test_zero_fraction_still_admits_one(self):
        admission = AdmissionController(
            max_pending=4, default_quota=TenantQuota(max_in_flight=2))
        assert admission.try_acquire("v", capacity_fraction=0.0)
        assert not admission.try_acquire("v", capacity_fraction=0.0)
        admission.release("v")

    def test_fraction_clamps_above_one(self):
        # A fraction > 1 (more live shards reported than configured)
        # must not inflate the queue depth past max_pending.
        admission = AdmissionController(max_pending=2)
        assert admission.try_acquire("v", capacity_fraction=5.0)
        assert admission.try_acquire("v", capacity_fraction=5.0)
        assert not admission.try_acquire("v", capacity_fraction=5.0)
        admission.release("v")
        admission.release("v")

    def test_negative_fraction_clamps_to_the_floor(self):
        admission = AdmissionController(max_pending=8)
        assert admission.try_acquire("v", capacity_fraction=-1.0)
        assert not admission.try_acquire("v", capacity_fraction=-1.0)
        admission.release("v")

    def test_quota_scaling_uses_ceil_not_floor(self):
        # quota 3 at fraction 0.4: ceil(1.2) = 2 slots, not floor's 1.
        admission = AdmissionController(
            max_pending=16, default_quota=TenantQuota(max_in_flight=3))
        assert admission.try_acquire("v", capacity_fraction=0.4)
        assert admission.try_acquire("v", capacity_fraction=0.4)
        assert not admission.try_acquire("v", capacity_fraction=0.4)
        admission.release("v")
        admission.release("v")

    def test_degraded_pool_bound_caps_tenants_jointly(self):
        # Per-venue quotas of 4 would allow 2+2 at fraction 0.5, but
        # the pool bound ceil(6 * 0.5) = 3 is the binding constraint:
        # the fourth concurrent request sheds on the *pool*, not the
        # venue, and the shed is charged to the venue that sent it.
        admission = AdmissionController(
            max_pending=6, default_quota=TenantQuota(max_in_flight=4))
        assert admission.try_acquire("a", capacity_fraction=0.5)
        assert admission.try_acquire("a", capacity_fraction=0.5)
        assert admission.try_acquire("b", capacity_fraction=0.5)
        assert not admission.try_acquire("b", capacity_fraction=0.5)
        counters = admission.venue_counters()
        assert counters["b"]["shed"] == 1
        assert counters["a"]["shed"] == 0
        for venue in ("a", "a", "b"):
            admission.release(venue)

    def test_per_venue_quota_binds_before_the_pool_under_degradation(self):
        # The mirror case: plenty of pool depth, but the noisy venue's
        # scaled quota (ceil(2 * 0.5) = 1) sheds its second request
        # while a quiet venue is still admitted.
        admission = AdmissionController(
            max_pending=32, default_quota=TenantQuota(max_in_flight=2))
        assert admission.try_acquire("noisy", capacity_fraction=0.5)
        assert not admission.try_acquire("noisy", capacity_fraction=0.5)
        assert admission.try_acquire("quiet", capacity_fraction=0.5)
        counters = admission.venue_counters()
        assert counters["noisy"]["shed"] == 1
        assert counters["quiet"]["shed"] == 0
        admission.release("noisy")
        admission.release("quiet")

    def test_recovery_restores_full_depth(self):
        admission = AdmissionController(max_pending=3)
        assert admission.try_acquire("v", capacity_fraction=1.0 / 3.0)
        assert not admission.try_acquire("v", capacity_fraction=1.0 / 3.0)
        # All shards back: the remaining depth opens up immediately.
        assert admission.try_acquire("v", capacity_fraction=1.0)
        assert admission.try_acquire("v", capacity_fraction=1.0)
        assert not admission.try_acquire("v", capacity_fraction=1.0)
        for _ in range(3):
            admission.release("v")


class TestFaultPlanWire:
    def test_rules_round_trip(self):
        plan = (FaultPlan()
                .crash_before_reply(1, index=3, to_boot=0)
                .crash_after_reply(0, from_boot=1)
                .stall(1, seconds=2.5)
                .reject_load(0, every=True)
                .crash_on_start(1))
        docs = plan.to_wire()
        back = FaultPlan.from_wire(docs)
        assert back.to_wire() == docs
        assert bool(back)
        assert not FaultPlan()

    def test_boot_gating(self):
        rule = FaultRule("search", 0, "crash", from_boot=1, to_boot=2)
        assert [rule.matches_boot(b) for b in range(4)] == [
            False, True, True, False]

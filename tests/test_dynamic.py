"""Dynamic overlay layer: every overlay answer is byte-identical to a
from-scratch engine rebuilt on the physically edited venue.

The contract under test (``docs/dynamic.md``):

* ``engine.search(q, algo, overlay=ov)`` equals
  ``IKRQEngine(apply_closures(space, ov), kindex).search(q, algo)``
  for every algorithm including the naive baseline — same routes,
  same scores, same wire bytes,
* door schedules reduce to the closure case once compiled against a
  query timestamp,
* keyword deltas reduce to an engine over the edited
  :class:`~repro.keywords.mappings.KeywordIndex`,
* the shared caches (answer LRU, endpoint-attachment LRU, door-matrix
  rows) can never leak a pre-closure value into an overlaid answer or
  vice versa,
* the serve layer applies deltas atomically: concurrent traffic sees
  exactly one ``dynamic_version`` per answer, never a blend, with the
  snapshot generation untouched.

Fuzz failures print per-seed reproduction instructions; every fuzz
case is reconstructible from its seed alone::

    PYTHONPATH=src python -m pytest \
        "tests/test_dynamic.py::test_fuzz_closure_identity[SEED]"

The CI ``dynamic-smoke`` job runs this file under each compute kernel
(``REPRO_KERNEL`` in python/numpy/native), so the seeded scenarios
below are exercised per backend.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.dynamic import (DAY_S, WEEK_S, ClosureOverlay, DeltaError,
                           DoorSchedule, DynamicStore, DynamicView,
                           EMPTY_OVERLAY, apply_closures, apply_keyword_ops,
                           compile_closed_doors, validate_ops, week_offset)
from repro.serve.wire import answer_to_wire, canonical_json
from tests.conftest import random_small_space
from tests.test_kernels import FAST, answer_signatures

ALGOS = ("ToE", "KoE", "KoE*", "naive")


def wire(answer):
    return canonical_json(answer_to_wire(answer))


def random_overlay(rng, space, max_doors=4, max_partitions=2):
    doors = sorted(space.doors)
    partitions = sorted(space.partitions)
    closed = rng.sample(doors, k=rng.randint(1, min(max_doors, len(doors))))
    sealed = (rng.sample(partitions,
                         k=rng.randint(1, min(max_partitions,
                                              len(partitions))))
              if rng.random() < 0.4 else [])
    return ClosureOverlay(frozenset(closed), frozenset(sealed))


def random_queries(rng, space, kindex, ps, pt, n=3):
    iwords = sorted(kindex.iwords)
    queries = [IKRQ(ps=ps, pt=pt, delta=rng.uniform(40.0, 120.0),
                    keywords=tuple(rng.sample(
                        iwords, k=min(rng.randint(1, 3), len(iwords)))),
                    k=rng.choice((1, 3)))]
    doors = sorted(space.doors)
    for _ in range(n - 1):
        a = space.door(rng.choice(doors)).position
        b = space.door(rng.choice(doors)).position
        queries.append(IKRQ(ps=a, pt=b, delta=rng.uniform(40.0, 120.0),
                            keywords=tuple(rng.sample(
                                iwords,
                                k=min(rng.randint(1, 3), len(iwords)))),
                            k=rng.choice((1, 3))))
    return queries


def assert_identical(engine, rebuilt, queries, overlay, repro,
                     algorithms=ALGOS):
    """Overlay answers vs. the rebuilt engine, plus the service path."""
    service = QueryService(engine)
    for query in queries:
        for algorithm in algorithms:
            expected = rebuilt.search(query, algorithm)
            got = engine.search(query, algorithm, overlay=overlay)
            assert answer_signatures([got]) == answer_signatures(
                [expected]) and wire(got) == wire(expected), (
                f"overlay answer diverged from the rebuilt venue: "
                f"{algorithm} {query} overlay={overlay!r}; {repro}")
            via_service = service.search(query, algorithm, overlay=overlay)
            assert wire(via_service) == wire(expected), (
                f"QueryService overlay answer diverged: {algorithm} "
                f"{query} overlay={overlay!r}; {repro}")


# ----------------------------------------------------------------------
# ClosureOverlay unit behaviour
# ----------------------------------------------------------------------
class TestClosureOverlay:
    def test_wire_round_trip(self):
        ov = ClosureOverlay(frozenset({3, 1}), frozenset({7}))
        assert ClosureOverlay.from_wire(ov.to_wire()) == ov
        assert ov.to_wire() == {"closed_doors": [1, 3],
                                "sealed_partitions": [7]}
        assert ClosureOverlay.from_wire(None) == EMPTY_OVERLAY
        assert not EMPTY_OVERLAY and ov

    def test_merge_unions(self):
        a = ClosureOverlay(frozenset({1}), frozenset({2}))
        b = ClosureOverlay(frozenset({3}))
        assert a.merge(b) == ClosureOverlay(frozenset({1, 3}),
                                            frozenset({2}))
        assert a.merge(EMPTY_OVERLAY) == a

    def test_from_wire_rejects_garbage(self):
        for doc in ({"closed_doors": "nope"}, {"unknown_field": [1]},
                    {"closed_doors": [True]}, {"closed_doors": [1.5]}, 7):
            with pytest.raises(ValueError):
                ClosureOverlay.from_wire(doc)

    def test_validate_rejects_unknown_ids(self, fig1):
        with pytest.raises(ValueError, match="unknown door"):
            ClosureOverlay(frozenset({424242})).validate(fig1.space)
        with pytest.raises(ValueError, match="unknown partition"):
            ClosureOverlay(
                sealed_partitions=frozenset({424242})).validate(fig1.space)

    def test_apply_closures_keeps_every_door(self, fig1):
        space = fig1.space
        did = sorted(space.doors)[0]
        edited = apply_closures(space, ClosureOverlay(frozenset({did})))
        # Door ids (and hence CSR dense indexing) are preserved: the
        # closed door stays in the venue with no enter/leave sets.
        assert sorted(edited.doors) == sorted(space.doors)
        assert not edited.d2p_enter(did) and not edited.d2p_leave(did)
        assert sorted(edited.partitions) == sorted(space.partitions)

    def test_apply_sealed_partition_strips_other_doors(self, fig1):
        space = fig1.space
        pid = sorted(space.partitions)[1]
        edited = apply_closures(
            space, ClosureOverlay(sealed_partitions=frozenset({pid})))
        for did in sorted(edited.doors):
            assert pid not in edited.d2p_enter(did)
            assert pid not in edited.d2p_leave(did)


# ----------------------------------------------------------------------
# DoorSchedule unit behaviour
# ----------------------------------------------------------------------
class TestDoorSchedule:
    def test_plain_window(self):
        s = DoorSchedule(((3600.0, 7200.0),))
        assert not s.is_open(0.0)
        # Week offset 0 is Monday 00:00; the epoch was a Thursday.
        monday = 4 * DAY_S  # 1970-01-05
        assert week_offset(monday) == 0.0
        assert s.is_open(monday + 3600.0)
        assert s.is_open(monday + 7199.0)
        assert not s.is_open(monday + 7200.0)
        assert s.is_open(monday + WEEK_S + 3600.0)  # weekly repeat

    def test_wrapping_window(self):
        # Open Sunday 23:00 through Monday 01:00.
        s = DoorSchedule(((WEEK_S - 3600.0, 3600.0),))
        monday = 4 * DAY_S
        assert s.is_open(monday)  # inside the wrapped tail
        assert s.is_open(monday - 1800.0)
        assert not s.is_open(monday + 3600.0)

    def test_daily_and_lockdown(self):
        s = DoorSchedule.daily(9 * 3600.0, 17 * 3600.0)
        monday = 4 * DAY_S
        for day in range(7):
            assert s.is_open(monday + day * DAY_S + 10 * 3600.0)
            assert not s.is_open(monday + day * DAY_S + 8 * 3600.0)
        assert not DoorSchedule.always_closed().is_open(monday)

    def test_rejects_bad_windows(self):
        for windows in (((0.0, 0.0),), ((-1.0, 5.0),),
                        ((0.0, WEEK_S + 1.0),), (("a", "b"),), ((1.0,),)):
            with pytest.raises(ValueError):
                DoorSchedule(windows)
        with pytest.raises(ValueError):
            DoorSchedule.from_wire("nope")

    def test_compile_closed_doors(self):
        monday = 4 * DAY_S
        schedules = {1: DoorSchedule.daily(9 * 3600.0, 17 * 3600.0),
                     2: DoorSchedule.always_closed()}
        assert compile_closed_doors(schedules, monday) == {1, 2}
        assert compile_closed_doors(
            schedules, monday + 10 * 3600.0) == {2}

    def test_week_boundary_wrap_edges(self):
        # Open Sunday 22:00 through Monday 02:00 — the window crosses
        # the schedule anchor (Monday 00:00 UTC), so membership is
        # "t >= start or t < end" and every edge matters exactly.
        start = WEEK_S - 2 * 3600.0
        end = 4 * 3600.0
        s = DoorSchedule(((start, end),))
        monday = 4 * DAY_S  # 1970-01-05: week offset 0
        sunday_2200 = monday - 2 * 3600.0
        assert week_offset(sunday_2200) == start
        assert s.is_open(sunday_2200)          # open AT the start edge
        assert not s.is_open(sunday_2200 - 1)  # closed just before it
        assert s.is_open(monday)               # the anchor instant
        assert week_offset(monday) == 0.0
        assert s.is_open(monday + 4 * 3600.0 - 1)  # last open second
        assert not s.is_open(monday + 4 * 3600.0)  # closed AT the end
        # The wrap repeats weekly in both directions.
        assert s.is_open(monday + WEEK_S)
        assert s.is_open(monday - WEEK_S)
        assert s.is_open(sunday_2200 + WEEK_S)
        assert not s.is_open(sunday_2200 - 1 + WEEK_S)

    def test_compile_closed_doors_at_exact_window_edges(self):
        monday = 4 * DAY_S
        plain = DoorSchedule(((3600.0, 7200.0),))           # Mon 01-02
        wrapped = DoorSchedule(((WEEK_S - 3600.0, 3600.0),))  # Sun 23-Mon 01
        schedules = {1: plain, 2: wrapped}
        # At the wrapped window's start edge only door 2 is open.
        assert compile_closed_doors(
            schedules, monday - 3600.0) == {1}
        # At Monday 00:00 (the anchor) still only door 2.
        assert compile_closed_doors(schedules, monday) == {1}
        # At 01:00 the wrapped window ends exactly as the plain one
        # begins: half-open intervals hand over with no overlap gap.
        assert compile_closed_doors(
            schedules, monday + 3600.0) == {2}
        assert compile_closed_doors(
            schedules, monday + 3600.0 - 1) == {1}
        # At the plain window's end edge both are closed.
        assert compile_closed_doors(
            schedules, monday + 7200.0) == {1, 2}


# ----------------------------------------------------------------------
# DynamicStore / DynamicView unit behaviour
# ----------------------------------------------------------------------
class TestDynamicStore:
    def test_versions_accumulate(self):
        store = DynamicStore()
        store.apply("v", [{"op": "close_door", "did": 3}])
        store.apply("v", [{"op": "seal_partition", "pid": 7}])
        view = store.view("v")
        assert view.version == 2 and view.keyword_version == 0
        assert view.overlay == ClosureOverlay(frozenset({3}),
                                              frozenset({7}))
        store.apply("v", [{"op": "open_door", "did": 3},
                          {"op": "unseal_partition", "pid": 7}])
        assert store.view("v").overlay == EMPTY_OVERLAY
        assert store.view("v").version == 3
        assert store.view("other").version == 0

    def test_keyword_ops_bump_keyword_version(self):
        store = DynamicStore()
        store.apply("v", [{"op": "close_door", "did": 1}])
        assert store.view("v").keyword_version == 0
        store.apply("v", [{"op": "set_iword", "pid": 2, "iword": "x"}])
        view = store.view("v")
        assert view.keyword_version == 1 and view.version == 2
        assert view.keyword_ops == (
            {"op": "set_iword", "pid": 2, "iword": "x"},)

    def test_derive_does_not_publish(self):
        store = DynamicStore()
        old, new = store.derive("v", [{"op": "close_door", "did": 1}])
        assert new.version == 1 and store.view("v").version == 0
        store.publish("v", new)
        assert store.view("v") is new

    def test_validate_ops_rejects_garbage(self):
        for ops in ([], "nope", [{"op": "close_door"}],
                    [{"op": "close_door", "did": "3"}],
                    [{"op": "close_door", "did": True}],
                    [{"op": "set_iword", "pid": 1}],
                    [{"op": "set_twords", "iword": "x", "twords": [1]}],
                    [{"op": "set_schedule", "did": 1, "open": [[0, 0]]}],
                    [{"op": "explode"}]):
            with pytest.raises(DeltaError):
                validate_ops(ops)

    def test_effective_overlay_merges_all_sources(self):
        monday = 4 * DAY_S
        view = DynamicView(
            version=1,
            overlay=ClosureOverlay(frozenset({1})),
            schedules=((2, DoorSchedule.always_closed()),
                       (3, DoorSchedule.daily(9 * 3600.0, 17 * 3600.0))))
        # No timestamp: schedules do not participate.
        assert view.effective_overlay() == ClosureOverlay(frozenset({1}))
        # Monday 00:00: door 2 always closed, door 3 outside hours.
        assert view.effective_overlay(at=monday).closed_doors == {1, 2, 3}
        # Monday 10:00 plus a per-query extra closure.
        merged = view.effective_overlay(
            at=monday + 10 * 3600.0,
            extra=ClosureOverlay(frozenset({9})))
        assert merged.closed_doors == {1, 2, 9}

    def test_schedule_ops_round_trip(self):
        store = DynamicStore()
        store.apply("v", [{"op": "set_schedule", "did": 4,
                           "open": [[0.0, 3600.0]]}])
        assert store.view("v").schedule_map() == {
            4: DoorSchedule(((0.0, 3600.0),))}
        store.apply("v", [{"op": "clear_schedule", "did": 4}])
        assert store.view("v").schedules == ()


# ----------------------------------------------------------------------
# apply_keyword_ops
# ----------------------------------------------------------------------
class TestKeywordOps:
    def test_edits_derive_a_fresh_index(self, fig1):
        kindex = fig1.kindex
        pid = sorted(kindex.labelled_partitions())[0]
        out = apply_keyword_ops(kindex, [
            {"op": "set_iword", "pid": pid, "iword": "rebranded"},
            {"op": "add_twords", "iword": "rebranded",
             "twords": ["fresh", "new"]},
        ])
        assert out.p2i(pid) == "rebranded"
        assert {"fresh", "new"} <= set(out.i2t("rebranded"))
        # The source index is untouched (immutability of generations).
        assert kindex.p2i(pid) != "rebranded"

    def test_clear_and_set_twords(self, fig1):
        kindex = fig1.kindex
        pid = sorted(kindex.labelled_partitions())[0]
        iword = kindex.p2i(pid)
        out = apply_keyword_ops(kindex, [
            {"op": "clear_iword", "pid": pid},
            {"op": "set_twords", "iword": iword, "twords": ["only"]},
        ])
        assert pid not in out.labelled_partitions()
        assert set(out.i2t(iword)) == {"only"}


# ----------------------------------------------------------------------
# Headline fuzz: closure identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_fuzz_closure_identity(seed):
    """Random closures on random venues: overlay == rebuilt, all algos.

    Reproduce one failing seed with::

        PYTHONPATH=src python -m pytest \
            "tests/test_dynamic.py::test_fuzz_closure_identity[SEED]"
    """
    space, kindex, ps, pt = random_small_space(seed, n_rooms=4 + seed % 3)
    engine = IKRQEngine(space, kindex)
    rng = random.Random(2000 + seed)
    for round_no in range(3):
        overlay = random_overlay(rng, space)
        repro = (f"random_small_space({seed}, n_rooms={4 + seed % 3}), "
                 f"rng seed {2000 + seed}, round {round_no}")
        rebuilt = IKRQEngine(apply_closures(space, overlay), kindex)
        queries = random_queries(rng, space, kindex, ps, pt)
        assert_identical(engine, rebuilt, queries, overlay, repro)
        # The wire dict form must behave exactly like the object.
        q = queries[0]
        assert wire(engine.search(q, "ToE", overlay=overlay.to_wire())) \
            == wire(rebuilt.search(q, "ToE"))


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_schedule_identity(seed):
    """Random weekly schedules compiled at random timestamps reduce to
    the closure case: answers equal the rebuilt edited venue.

    Reproduce with::

        PYTHONPATH=src python -m pytest \
            "tests/test_dynamic.py::test_fuzz_schedule_identity[SEED]"
    """
    space, kindex, ps, pt = random_small_space(seed)
    engine = IKRQEngine(space, kindex)
    rng = random.Random(3000 + seed)
    doors = sorted(space.doors)
    schedules = {}
    for did in rng.sample(doors, k=min(3, len(doors))):
        if rng.random() < 0.25:
            schedules[did] = DoorSchedule.always_closed()
        elif rng.random() < 0.5:
            start = rng.uniform(0.0, DAY_S - 2.0)
            schedules[did] = DoorSchedule.daily(
                start, rng.uniform(start + 1.0, DAY_S))
        else:
            start = rng.uniform(0.0, WEEK_S - 1.0)
            end = rng.uniform(0.0, WEEK_S)  # may wrap
            if end == start:
                end = start + 1.0
            schedules[did] = DoorSchedule(((start, end),))
    for round_no in range(4):
        at = rng.uniform(0.0, 4.0 * WEEK_S)
        closed = compile_closed_doors(schedules, at)
        view = DynamicView(version=1,
                           schedules=tuple(sorted(schedules.items())))
        overlay = view.effective_overlay(at=at)
        assert overlay.closed_doors == closed
        repro = (f"random_small_space({seed}), rng seed {3000 + seed}, "
                 f"round {round_no}, at={at!r}")
        if not overlay:
            assert wire(engine.search(
                IKRQ(ps=ps, pt=pt, delta=80.0,
                     keywords=(sorted(kindex.iwords)[0],), k=1),
                "ToE", overlay=overlay)) is not None
            continue
        rebuilt = IKRQEngine(apply_closures(space, overlay), kindex)
        queries = random_queries(rng, space, kindex, ps, pt, n=2)
        assert_identical(engine, rebuilt, queries, overlay, repro,
                         algorithms=("ToE", "KoE*"))


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_delta_identity(seed):
    """Random delta sequences (door flips + keyword edits) through a
    DynamicStore: the overlaid keyword-sibling engine equals a
    from-scratch engine on the edited venue and edited index.

    Reproduce with::

        PYTHONPATH=src python -m pytest \
            "tests/test_dynamic.py::test_fuzz_delta_identity[SEED]"
    """
    space, kindex, ps, pt = random_small_space(seed)
    engine = IKRQEngine(space, kindex)
    rng = random.Random(4000 + seed)
    doors = sorted(space.doors)
    labelled = sorted(kindex.labelled_partitions())
    store = DynamicStore()
    for round_no in range(2):
        ops = []
        for _ in range(rng.randint(1, 4)):
            kind = rng.random()
            if kind < 0.35:
                ops.append({"op": rng.choice(("close_door", "open_door")),
                            "did": rng.choice(doors)})
            elif kind < 0.5:
                ops.append({"op": rng.choice(("seal_partition",
                                              "unseal_partition")),
                            "pid": rng.choice(sorted(space.partitions))})
            elif kind < 0.75:
                ops.append({"op": "set_iword",
                            "pid": rng.choice(labelled),
                            "iword": rng.choice(("fuzzbrand", "coffee",
                                                 "rebrand"))})
            else:
                ops.append({"op": "add_twords",
                            "iword": rng.choice(sorted(kindex.iwords)),
                            "twords": rng.sample(
                                ("tea", "cake", "zing"), k=2)})
        store.apply("v", ops)
        view = store.view("v")
        repro = (f"random_small_space({seed}), rng seed {4000 + seed}, "
                 f"round {round_no}, ops={ops!r}")
        kindex2 = apply_keyword_ops(kindex, view.keyword_ops)
        live = engine.keyword_sibling(kindex2)
        rebuilt = IKRQEngine(apply_closures(space, view.overlay), kindex2)
        overlay = view.overlay if view.overlay else None
        for query in random_queries(rng, space, kindex2, ps, pt, n=2):
            for algorithm in ("ToE", "KoE", "naive"):
                expected = rebuilt.search(query, algorithm)
                got = live.search(query, algorithm, overlay=overlay)
                assert wire(got) == wire(expected), (
                    f"delta answer diverged: {algorithm} {query}; {repro}")


# ----------------------------------------------------------------------
# Kernel + snapshot coverage (native ctypes over mmap memoryviews)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST)
@pytest.mark.parametrize("mapped", [False, True], ids=["eager", "mmap"])
def test_overlay_identity_on_snapshot_loaded_engines(backend, mapped,
                                                     tmp_path):
    """Closures over snapshot-loaded engines — including the native
    ctypes backend reading read-only ``mmap`` memoryview buffers —
    match the interpreted rebuilt venue byte for byte."""
    from repro.serve.snapshot import load_snapshot, save_snapshot
    space, kindex, ps, pt = random_small_space(2, n_rooms=6)
    plain = IKRQEngine(space, kindex)
    path = tmp_path / "venue.snap.bin"
    save_snapshot(path, plain, binary=True)
    loaded = load_snapshot(path, mmap=mapped, kernel=backend)
    assert loaded.kernel_backend == backend
    if mapped:
        assert loaded.mapped_bytes > 0
    rng = random.Random(97)
    for _ in range(3):
        overlay = random_overlay(rng, space)
        rebuilt = IKRQEngine(apply_closures(space, overlay), kindex)
        for query in random_queries(rng, space, kindex, ps, pt, n=2):
            for algorithm in ("ToE", "KoE", "KoE*"):
                got = loaded.search(query, algorithm, overlay=overlay)
                assert wire(got) == wire(rebuilt.search(query, algorithm))
    # Raw banned-set runs over the loaded (possibly mmap) buffers.
    doors = sorted(space.doors)
    for _ in range(8):
        source = rng.choice(doors)
        banned = frozenset(rng.sample(doors, k=2)) - {source}
        bp = frozenset(rng.sample(sorted(space.partitions), k=1))
        assert (loaded.graph.dijkstra(source, banned=banned,
                                      banned_partitions=bp)
                == plain.graph.dijkstra(source, banned=banned,
                                        banned_partitions=bp))


# ----------------------------------------------------------------------
# Cache-poisoning regressions (overlay-aware cache keys)
# ----------------------------------------------------------------------
class TestCacheIsolation:
    def test_closure_never_served_from_warm_caches(self):
        """Warm every cache tier without an overlay, then ask the same
        query under a closure: the answer must match a cold rebuilt
        engine, and the original answer must survive the interleaving."""
        space, kindex, ps, pt = random_small_space(5)
        engine = IKRQEngine(space, kindex)
        service = QueryService(engine)
        query = IKRQ(ps=ps, pt=pt, delta=90.0,
                     keywords=(sorted(kindex.iwords)[0],), k=2)
        baseline = {algo: wire(service.search(query, algo))
                    for algo in ("ToE", "KoE*")}
        # Close a door actually used by the baseline best route, if any.
        answer = engine.search(query, "ToE")
        route_doors = (answer.routes[0].route.doors
                       if answer.routes else ())
        closed = route_doors[0] if route_doors else sorted(space.doors)[0]
        overlay = ClosureOverlay(frozenset({closed}))
        rebuilt = IKRQEngine(apply_closures(space, overlay), kindex)
        for algo in ("ToE", "KoE*"):
            got = service.search(query, algo, overlay=overlay)
            assert wire(got) == wire(rebuilt.search(query, algo)), (
                f"{algo}: closure answered from a pre-closure cache")
            # Interleaved plain traffic still sees the open venue.
            assert wire(service.search(query, algo)) == baseline[algo]

    def test_overlay_matrix_rows_are_banned_scoped(self):
        space, kindex, _, _ = random_small_space(3)
        engine = IKRQEngine(space, kindex)
        base = engine.door_matrix()
        did = sorted(space.doors)[0]
        overlay = ClosureOverlay(frozenset({did}))
        scoped = engine._overlay_matrix(engine.overlay_state(overlay))
        rebuilt = IKRQEngine(apply_closures(space, overlay),
                             kindex).door_matrix()
        fresh = IKRQEngine(space, kindex).door_matrix()
        doors = sorted(space.doors)
        live = [d for d in doors if d != did]
        for s in live:
            for t in live:
                assert scoped.distance(s, t) == rebuilt.distance(s, t)
            # The closed door is unreachable from every live door
            # (only its self-distance convention differs, and a closed
            # door can never appear as a route door).
            assert scoped.distance(s, did) == float("inf")
            assert rebuilt.distance(s, did) == float("inf")
        for s in doors:
            for t in doors:
                # The base matrix was not poisoned by overlay rows.
                assert base.distance(s, t) == fresh.distance(s, t)

    def test_overlay_matrix_refuses_to_spill(self, tmp_path):
        """Spill files are keyed by row index only — banned-scoped
        rows must never reach one."""
        from repro.space.graph import DoorMatrix
        space, kindex, _, _ = random_small_space(3)
        engine = IKRQEngine(space, kindex)
        with pytest.raises(ValueError, match="spill"):
            DoorMatrix(engine.graph,
                       spill_path=str(tmp_path / "rows.cache"),
                       banned=frozenset({sorted(space.doors)[0]}))

    def test_endpoint_entries_are_overlay_keyed(self):
        space, kindex, ps, pt = random_small_space(4)
        engine = IKRQEngine(space, kindex)
        service = QueryService(engine)
        overlay = ClosureOverlay(frozenset({sorted(space.doors)[0]}))
        plain_entry = service._endpoint_entry(ps, pt)
        overlaid_entry = service._endpoint_entry(ps, pt, overlay)
        assert plain_entry is not overlaid_entry
        assert service._endpoint_entry(ps, pt) is plain_entry
        assert service._endpoint_entry(ps, pt, overlay) is overlaid_entry

    def test_overlay_state_lru_bounded(self):
        space, kindex, _, _ = random_small_space(6)
        engine = IKRQEngine(space, kindex)
        engine.overlay_cache_capacity = 2
        doors = sorted(space.doors)
        states = [engine.overlay_state(ClosureOverlay(frozenset({did})))
                  for did in doors[:4]]
        assert len(engine._overlay_states) <= 2
        # Re-requesting an evicted overlay builds an equivalent state.
        again = engine.overlay_state(ClosureOverlay(frozenset({doors[0]})))
        assert sorted(again.view.doors) == sorted(space.doors)


# ----------------------------------------------------------------------
# Serve layer: atomic deltas under concurrent traffic
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_snapshot(tmp_path_factory):
    from repro.datasets import paper_fig1
    from repro.serve import save_snapshot
    fixture = paper_fig1()
    engine = IKRQEngine(fixture.space, fixture.kindex)
    path = tmp_path_factory.mktemp("dynamic") / "fig1.snapshot.json"
    save_snapshot(path, engine)
    return str(path), fixture


@pytest.mark.slow
class TestServeDeltas:
    def test_delta_is_atomic_under_concurrent_search(self, serve_snapshot):
        """Hammer ``submit`` from threads while door and keyword deltas
        flip underneath: every answer must match the rebuilt venue of
        exactly the dynamic version it is stamped with — no torn
        reads, no stale keyword variants, no non-shed failures."""
        from repro.serve import ShardDispatcher, ShardPool
        from repro.serve.wire import query_to_wire
        path, fixture = serve_snapshot
        space, kindex = fixture.space, fixture.kindex
        query = IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        wire_query = query_to_wire(query)
        base_engine = IKRQEngine(space, kindex)
        route_doors = base_engine.search(query, "ToE").routes[0].route.doors
        d1, d2 = route_doors[0], sorted(space.doors)[-1]
        labelled = sorted(kindex.labelled_partitions())[0]
        # The exact delta sequence the writer thread will apply, and
        # the expected answer per resulting dynamic version.
        deltas = [
            [{"op": "close_door", "did": d1}],
            [{"op": "close_door", "did": d2}],
            [{"op": "set_iword", "pid": labelled, "iword": "latte"}],
            [{"op": "open_door", "did": d1}],
        ]
        store = DynamicStore()
        expected = {}
        view = store.view("default")
        for version, ops in enumerate([None] + deltas):
            if ops is not None:
                _, view = store.apply("default", ops)
            kindex_v = apply_keyword_ops(kindex, view.keyword_ops)
            rebuilt = IKRQEngine(apply_closures(space, view.overlay),
                                 kindex_v)
            answer = rebuilt.search(query, "ToE")
            expected[version] = canonical_json(
                {"algorithm": answer.algorithm,
                 "routes": answer_to_wire(answer)["routes"]})
        assert len(set(expected.values())) >= 3  # the deltas do bite
        failures = []
        responses = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                responses.append(dispatcher.submit(dict(wire_query)))

        with ShardPool(path, shards=2) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=64)
            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            try:
                import time
                for ops in deltas:
                    time.sleep(0.05)
                    applied = dispatcher.delta("default", ops)
                    assert applied["status"] == "ok", applied
                time.sleep(0.05)
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=30)
        assert len(responses) > 20
        for response in responses:
            status = response.get("status")
            if status == "overloaded":
                continue  # an honest shed, not a failure
            if status != "ok":
                failures.append(response)
                continue
            version = response.get("dynamic_version")
            got = canonical_json({"algorithm": response["algorithm"],
                                  "routes": response["routes"]})
            assert got == expected[version], (
                f"answer stamped dynamic_version={version} does not "
                f"match that version's rebuilt venue")
        assert not failures, failures
        assert {r.get("dynamic_version") for r in responses
                if r.get("status") == "ok"} >= {0, len(deltas)}

    def test_delta_swaps_without_reingest(self, serve_snapshot):
        from repro.serve import ShardDispatcher, ShardPool
        from repro.serve.wire import query_to_wire
        path, fixture = serve_snapshot
        query = query_to_wire(IKRQ(ps=fixture.ps, pt=fixture.pt,
                                   delta=60.0, keywords=("coffee",), k=2))
        with ShardPool(path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            before = dispatcher.submit(dict(query))
            assert before["status"] == "ok" and before["generation"] == 1
            did = sorted(fixture.space.doors)[0]
            applied = dispatcher.delta(
                "default", [{"op": "close_door", "did": did}])
            assert applied["status"] == "ok" and applied["version"] == 1
            after = dispatcher.submit(dict(query))
            # Same snapshot generation — the delta was an overlay, not
            # an ingest.
            assert after["generation"] == 1
            assert after["dynamic_version"] == 1
            assert (dispatcher.registry.active_generation("default") == 1)

    def test_delta_rejects_unknown_ids_and_venues(self, serve_snapshot):
        from repro.serve import ShardDispatcher, ShardPool
        path, _ = serve_snapshot
        with ShardPool(path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            bad = dispatcher.delta("default",
                                   [{"op": "close_door", "did": 424242}])
            assert bad["status"] == "bad_request"
            assert "424242" in bad["error"]
            # The failed delta must not have advanced the version.
            assert dispatcher.dynamic.view("default").version == 0
            assert dispatcher.delta(
                "nope", [{"op": "close_door", "did": 1}]
            )["status"] == "unknown_venue"
            assert dispatcher.delta("default", "garbage")["status"] \
                == "bad_request"

    def test_ingest_after_delta_replays_keyword_ops(self, serve_snapshot):
        """A generation loaded after a keyword delta must serve the
        edited index: the pool's delta manifest replays into newly
        loaded engines."""
        from repro.serve import ShardDispatcher, ShardPool
        from repro.serve.wire import query_to_wire
        path, fixture = serve_snapshot
        space, kindex = fixture.space, fixture.kindex
        query = IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
                     keywords=("latte",), k=2)
        labelled = sorted(kindex.labelled_partitions())[0]
        kw_ops = [{"op": "set_iword", "pid": labelled, "iword": "latte"}]
        rebuilt = IKRQEngine(space, apply_keyword_ops(kindex, kw_ops))
        expected = rebuilt.search(query, "ToE")
        with ShardPool(path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            applied = dispatcher.delta("default", kw_ops)
            assert applied["status"] == "ok" and applied["keyword_broadcast"]
            swap = dispatcher.ingest("default", path)
            assert swap["status"] == "ok" and swap["generation"] == 2
            served = dispatcher.submit(query_to_wire(query))
            assert served["status"] == "ok"
            assert served["generation"] == 2
            got = canonical_json({"algorithm": served["algorithm"],
                                  "routes": served["routes"]})
            assert got == canonical_json(
                {"algorithm": expected.algorithm,
                 "routes": answer_to_wire(expected)["routes"]})

    def test_per_query_closures_and_at(self, serve_snapshot):
        from repro.serve import ShardDispatcher, ShardPool
        from repro.serve.wire import query_to_wire
        path, fixture = serve_snapshot
        space, kindex = fixture.space, fixture.kindex
        query = IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
                     keywords=("coffee",), k=2)
        wire_query = query_to_wire(query)
        base_engine = IKRQEngine(space, kindex)
        did = base_engine.search(query, "ToE").routes[0].route.doors[0]
        overlay = ClosureOverlay(frozenset({did}))
        rebuilt = IKRQEngine(apply_closures(space, overlay), kindex)
        expected_closed = canonical_json(
            {"algorithm": "ToE",
             "routes": answer_to_wire(rebuilt.search(query, "ToE"))["routes"]})
        with ShardPool(path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            # Per-query closure.
            got = dispatcher.submit(dict(wire_query),
                                    closures=overlay.to_wire())
            assert got["status"] == "ok"
            assert canonical_json({"algorithm": got["algorithm"],
                                   "routes": got["routes"]}) \
                == expected_closed
            # Schedule + timestamp: closed at Monday 03:00, open at 12:00.
            applied = dispatcher.delta(
                "default",
                [{"op": "set_schedule", "did": did,
                  "open": [[9 * 3600.0, 17 * 3600.0]]}])
            assert applied["status"] == "ok"
            monday = 4 * DAY_S
            closed = dispatcher.submit(dict(wire_query),
                                       at=monday + 3 * 3600.0)
            assert canonical_json({"algorithm": closed["algorithm"],
                                   "routes": closed["routes"]}) \
                == expected_closed
            open_ = dispatcher.submit(dict(wire_query),
                                      at=monday + 12 * 3600.0)
            base = base_engine.search(query, "ToE")
            assert canonical_json({"algorithm": open_["algorithm"],
                                   "routes": open_["routes"]}) \
                == canonical_json({"algorithm": base.algorithm,
                                   "routes": answer_to_wire(base)["routes"]})
            # Garbage closures are rejected before dispatch.
            bad = dispatcher.submit(dict(wire_query),
                                    closures={"closed_doors": "x"})
            assert bad["status"] == "bad_request"

"""Multi-venue tenancy: registry lifecycle, per-tenant quotas,
(venue, ps, pt) routing, zero-downtime hot-swaps and the HTTP
control plane."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import IKRQ, IKRQEngine
from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.serve import (AdmissionController, IKRQServer, ShardDispatcher,
                         ShardPool, SnapshotRegistry, TenantQuota,
                         answer_to_wire, canonical_json, query_to_wire,
                         save_snapshot, shard_for)
from repro.space import IndoorSpaceBuilder, PartitionKind


def _corridor_mall():
    """A second, genuinely different venue: four shops on a corridor."""
    b = IndoorSpaceBuilder()
    rooms = []
    for i in range(4):
        rooms.append(b.add_partition(
            f"room{i}", Rect(i * 10.0, 10.0, (i + 1) * 10.0, 20.0)))
        b.add_partition(f"cell{i}", Rect(i * 10.0, 0.0, (i + 1) * 10.0, 10.0),
                        PartitionKind.HALLWAY)
        b.add_door(f"rd{i}", Point(i * 10.0 + 5.0, 10.0),
                   between=(f"room{i}", f"cell{i}"))
        if i > 0:
            b.add_door(f"cd{i}", Point(i * 10.0, 5.0),
                       between=(f"cell{i - 1}", f"cell{i}"))
    space = b.build()
    kindex = KeywordIndex()
    shops = [("espressobar", ("coffee", "latte", "beans")),
             ("gadgetsine", ("phone", "laptop", "charger")),
             ("beanhouse", ("coffee", "beans", "mocha")),
             ("booknook", ("books", "maps", "pens"))]
    for room, (iword, twords) in zip(rooms, shops):
        kindex.assign_iword(room, iword)
        kindex.add_twords(iword, twords)
    return space, kindex


@pytest.fixture(scope="module")
def corridor_venue():
    space, kindex = _corridor_mall()
    engine = IKRQEngine(space, kindex)
    ps = Point(2.0, 5.0, 0.0)
    pt = Point(35.0, 5.0, 0.0)
    return engine, ps, pt


@pytest.fixture(scope="module")
def venue_snapshots(tmp_path_factory, fig1, corridor_venue):
    """Two genuinely different venues: fig1 and the corridor mall."""
    tmp = tmp_path_factory.mktemp("tenancy")
    fig1_engine = IKRQEngine(fig1.space, fig1.kindex)
    corridor_engine, _, _ = corridor_venue
    paths = {"fig1": str(tmp / "fig1.snap.json"),
             "corridor": str(tmp / "corridor.snap.json")}
    save_snapshot(paths["fig1"], fig1_engine)
    save_snapshot(paths["corridor"], corridor_engine)
    return paths


@pytest.fixture(scope="module")
def venue_queries(fig1, corridor_venue):
    _, ps, pt = corridor_venue
    return {
        "fig1": IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=2),
        "corridor": IKRQ(ps=ps, pt=pt, delta=120.0,
                         keywords=("coffee", "books"), k=2),
    }


def _expected(engine: IKRQEngine, query: IKRQ, algorithm: str = "ToE") -> str:
    return canonical_json(answer_to_wire(engine.search(query, algorithm)))


def _got(response: dict) -> str:
    return canonical_json({"algorithm": response.get("algorithm"),
                           "routes": response.get("routes")})


# ----------------------------------------------------------------------
# Registry lifecycle
# ----------------------------------------------------------------------
class TestSnapshotRegistry:
    def test_generation_numbers_are_monotonic_and_never_reused(self):
        registry = SnapshotRegistry()
        g1 = registry.add("mall", "a.snap")
        g2 = registry.add("mall", "b.snap")
        assert (g1.generation, g2.generation) == (1, 2)
        assert g1.state == g2.state == "loading"
        registry.activate("mall", 2)
        assert registry.add("mall", "c.snap").generation == 3

    def test_activate_flips_and_marks_previous_draining(self):
        registry = SnapshotRegistry()
        g1 = registry.add("mall", "a.snap")
        assert registry.activate("mall", 1) is None
        assert g1.state == "active"
        assert registry.active_generation("mall") == 1
        g2 = registry.add("mall", "b.snap")
        previous = registry.activate("mall", 2)
        assert previous is g1 and g1.state == "draining"
        assert registry.active_generation("mall") == 2
        assert registry.acquire("mall") is g2
        registry.release(g2)

    def test_acquire_is_atomic_with_the_flip(self):
        registry = SnapshotRegistry()
        registry.add("mall", "a.snap")
        registry.activate("mall", 1)
        g1 = registry.acquire("mall")
        registry.add("mall", "b.snap")
        registry.activate("mall", 2)
        # The in-flight request still pins generation 1; new requests
        # land on 2.
        assert g1.generation == 1 and g1.in_flight == 1
        assert registry.acquire("mall").generation == 2

    def test_acquire_unknown_venue_raises(self):
        registry = SnapshotRegistry()
        with pytest.raises(KeyError):
            registry.acquire("nowhere")
        registry.add("mall", "a.snap")  # loading but not active yet
        with pytest.raises(KeyError):
            registry.acquire("mall")

    def test_drain_waits_for_release(self):
        registry = SnapshotRegistry()
        registry.add("mall", "a.snap")
        registry.activate("mall", 1)
        gen = registry.acquire("mall")
        assert not registry.drain(gen, timeout=0.05)

        def release_soon():
            time.sleep(0.05)
            registry.release(gen)

        thread = threading.Thread(target=release_soon)
        thread.start()
        assert registry.drain(gen, timeout=5.0)
        thread.join()

    def test_failed_generation_cannot_activate(self):
        registry = SnapshotRegistry()
        registry.add("mall", "a.snap")
        registry.fail("mall", 1)
        with pytest.raises(ValueError):
            registry.activate("mall", 1)

    def test_describe_shape(self):
        registry = SnapshotRegistry()
        registry.add("mall", "a.snap")
        registry.activate("mall", 1)
        registry.add("shop", "s.snap")
        docs = {doc["venue"]: doc for doc in registry.describe()}
        assert set(docs) == {"mall", "shop"}
        assert docs["mall"]["active_generation"] == 1
        assert docs["shop"]["active_generation"] is None
        assert docs["mall"]["generations"][0]["state"] == "active"


# ----------------------------------------------------------------------
# Per-tenant quotas (pure admission logic)
# ----------------------------------------------------------------------
class TestTenantQuotas:
    def test_noisy_venue_cannot_starve_another(self):
        ctrl = AdmissionController(
            max_pending=10, quotas={"noisy": TenantQuota(2)})
        assert ctrl.try_acquire("noisy") and ctrl.try_acquire("noisy")
        # The noisy tenant is at quota: its traffic sheds...
        assert not ctrl.try_acquire("noisy")
        # ...while the quiet tenant still has the whole pool.
        for _ in range(8):
            assert ctrl.try_acquire("quiet")
        counters = ctrl.venue_counters()
        assert counters["noisy"]["shed"] == 1
        assert counters["noisy"]["in_flight"] == 2
        assert counters["quiet"]["shed"] == 0
        assert counters["quiet"]["in_flight"] == 8

    def test_global_bound_still_applies(self):
        ctrl = AdmissionController(max_pending=2,
                                   default_quota=TenantQuota(5))
        assert ctrl.try_acquire("a") and ctrl.try_acquire("b")
        assert not ctrl.try_acquire("c")
        ctrl.release("a")
        assert ctrl.try_acquire("c")

    def test_release_frees_the_venue_slot(self):
        ctrl = AdmissionController(max_pending=10,
                                   quotas={"v": TenantQuota(1)})
        assert ctrl.try_acquire("v")
        assert not ctrl.try_acquire("v")
        ctrl.release("v")
        assert ctrl.try_acquire("v")

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(0)


# ----------------------------------------------------------------------
# Multi-venue pool + dispatcher (process level)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestMultiVenuePool:
    def test_routes_by_venue_and_stays_byte_identical(
            self, venue_snapshots, venue_queries, fig1, corridor_venue):
        engines = {"fig1": IKRQEngine(fig1.space, fig1.kindex),
                   "corridor": corridor_venue[0]}
        with ShardPool(venues=venue_snapshots, shards=2) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            for venue, query in venue_queries.items():
                response = dispatcher.submit(
                    query_to_wire(query), "ToE", venue=venue)
                assert response["status"] == "ok"
                assert response["venue"] == venue
                assert response["generation"] == 1
                assert response["shard"] == shard_for(
                    query_to_wire(query)["ps"], query_to_wire(query)["pt"],
                    2, venue)
                assert _got(response) == _expected(engines[venue], query)

    def test_unknown_venue_is_refused(self, venue_snapshots, venue_queries):
        with ShardPool(venues=venue_snapshots, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            response = dispatcher.submit(
                query_to_wire(venue_queries["fig1"]), "ToE",
                venue="atlantis")
            assert response["status"] == "unknown_venue"

    def test_hot_swap_is_zero_downtime_and_byte_identical(
            self, tmp_path, venue_snapshots, venue_queries, fig1):
        """Hammer the venue across an ingest; every answer must be
        byte-identical and come from generation 1 or 2 — after the
        swap returns, only from 2."""
        engine = IKRQEngine(fig1.space, fig1.kindex)
        query = venue_queries["fig1"]
        expected = _expected(engine, query)
        # The replacement generation: a rebuilt engine over the same
        # venue, snapshotted in the *binary* encoding this time.
        gen2_path = tmp_path / "fig1.gen2.snap"
        save_snapshot(gen2_path, IKRQEngine(fig1.space, fig1.kindex),
                      binary=True)
        with ShardPool(venues={"fig1": venue_snapshots["fig1"]},
                       shards=2) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=16)
            doc = query_to_wire(query)
            stop = threading.Event()
            observed = []
            failures = []

            def hammer():
                while not stop.is_set():
                    response = dispatcher.submit(doc, "ToE", venue="fig1")
                    if response.get("status") != "ok":
                        failures.append(response)
                        return
                    observed.append(response["generation"])
                    if _got(response) != expected:
                        failures.append("mismatch")
                        return

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            report = dispatcher.ingest("fig1", str(gen2_path))
            after_swap = dispatcher.submit(doc, "ToE", venue="fig1")
            stop.set()
            for t in threads:
                t.join()
            assert not failures
            assert report["status"] == "ok"
            assert report["generation"] == 2
            assert report["previous_generation"] == 1
            assert report["drained"] is True
            assert set(observed) <= {1, 2}
            assert after_swap["status"] == "ok"
            assert after_swap["generation"] == 2
            assert _got(after_swap) == expected
            # The registry reflects the completed lifecycle.
            registry = dispatcher.registry
            assert registry.active_generation("fig1") == 2
            states = {g["generation"]: g["state"]
                      for doc_ in registry.describe()
                      for g in doc_["generations"]}
            assert states == {1: "retired", 2: "active"}

    def test_failed_ingest_leaves_old_generation_serving(
            self, tmp_path, venue_snapshots, venue_queries, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        query = venue_queries["fig1"]
        broken = tmp_path / "broken.snap.json"
        broken.write_text("{\"format\": \"nonsense\"}")
        with ShardPool(venues={"fig1": venue_snapshots["fig1"]},
                       shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            report = dispatcher.ingest("fig1", str(broken))
            assert report["status"] == "error"
            assert dispatcher.registry.active_generation("fig1") == 1
            response = dispatcher.submit(
                query_to_wire(query), "ToE", venue="fig1")
            assert response["status"] == "ok"
            assert response["generation"] == 1
            assert _got(response) == _expected(engine, query)

    def test_quota_sheds_noisy_venue_but_serves_quiet_one(
            self, venue_snapshots, venue_queries):
        """One venue saturated with slow requests cannot push another
        venue's traffic out — the quota sheds the noisy tenant only."""
        with ShardPool(venues=venue_snapshots, shards=2,
                       allow_sleep=True) as pool:
            dispatcher = ShardDispatcher(
                pool, max_pending=8,
                quotas={"fig1": TenantQuota(1)})
            noisy_doc = query_to_wire(venue_queries["fig1"])
            quiet_doc = query_to_wire(venue_queries["corridor"])
            slow = {}

            def occupy():
                slow["response"] = dispatcher.submit(
                    noisy_doc, "ToE", venue="fig1", sleep=1.0)

            thread = threading.Thread(target=occupy)
            thread.start()
            deadline = time.time() + 5.0
            while dispatcher.admission.in_flight == 0:
                if time.time() > deadline:
                    pytest.fail("slow request never admitted")
                time.sleep(0.01)
            shed = dispatcher.submit(noisy_doc, "ToE", venue="fig1")
            assert shed["status"] == "overloaded"
            assert shed["venue"] == "fig1"
            assert shed["trace_id"]  # sheds are always traced
            quiet = dispatcher.submit(quiet_doc, "ToE", venue="corridor")
            assert quiet["status"] == "ok"
            thread.join()
            assert slow["response"]["status"] == "ok"
            counters = dispatcher.admission.venue_counters()
            assert counters["fig1"]["shed"] == 1
            assert counters["corridor"]["shed"] == 0

    def test_stats_carry_per_venue_breakdown(self, venue_snapshots,
                                             venue_queries):
        with ShardPool(venues=venue_snapshots, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            dispatcher.submit(query_to_wire(venue_queries["fig1"]),
                              "ToE", venue="fig1")
            stats = pool.stats()
            assert len(stats) == 1
            doc = stats[0]
            assert doc["status"] == "ok"
            by_venue = {entry["venue"]: entry
                        for entry in doc["venue_stats"]}
            assert set(by_venue) == {"fig1", "corridor"}
            assert by_venue["fig1"]["generation"] == 1
            assert by_venue["fig1"]["stats"]["queries_served"] == 1
            assert by_venue["corridor"]["stats"]["queries_served"] == 0
            served = doc["stats"]["queries_served"]
            assert served == 1  # the aggregate sums venues


# ----------------------------------------------------------------------
# HTTP control plane
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestHTTPTenancy:
    @pytest.fixture()
    def server(self, venue_snapshots):
        with IKRQServer(venues=venue_snapshots, workers=2,
                        max_pending=8,
                        default_quota=TenantQuota(4)) as server:
            server.start()
            yield server

    def _post(self, server, path, doc):
        host, port = server.address
        body = json.dumps(doc).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}{path}", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _get(self, server, path):
        host, port = server.address
        with urllib.request.urlopen(
                f"http://{host}:{port}{path}", timeout=30) as resp:
            return resp.status, resp.read().decode("utf-8")

    def test_search_with_venue_field(self, server, venue_queries,
                                     corridor_venue):
        engine, _, _ = corridor_venue
        query = venue_queries["corridor"]
        code, doc = self._post(server, "/search",
                               {"venue": "corridor",
                                "query": query_to_wire(query)})
        assert code == 200 and doc["status"] == "ok"
        assert doc["venue"] == "corridor" and doc["generation"] == 1
        assert _got(doc) == _expected(engine, query)

    def test_unknown_venue_is_404(self, server, venue_queries):
        code, doc = self._post(
            server, "/search",
            {"venue": "atlantis",
             "query": query_to_wire(venue_queries["fig1"])})
        assert code == 404 and doc["status"] == "unknown_venue"

    def test_venues_listing(self, server):
        code, text = self._get(server, "/venues")
        assert code == 200
        listing = json.loads(text)
        venues = {doc["venue"]: doc for doc in listing["venues"]}
        assert set(venues) == {"fig1", "corridor"}
        for doc in venues.values():
            assert doc["active_generation"] == 1
            assert doc["generations"][0]["state"] == "active"
            assert doc["admission"]["max_in_flight"] == 4

    def test_http_ingest_round_trip(self, server, venue_snapshots,
                                    venue_queries, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        query = venue_queries["fig1"]
        code, swap = self._post(server, "/ingest",
                                {"venue": "fig1",
                                 "snapshot": venue_snapshots["fig1"],
                                 "wait": True})
        assert code == 200 and swap["status"] == "ok"
        assert swap["generation"] == 2
        code, doc = self._post(server, "/search",
                               {"venue": "fig1",
                                "query": query_to_wire(query)})
        assert code == 200 and doc["generation"] == 2
        assert _got(doc) == _expected(engine, query)

    def test_retired_generation_gauges_disappear(self, server,
                                                 venue_snapshots,
                                                 venue_queries):
        self._post(server, "/search",
                   {"venue": "fig1",
                    "query": query_to_wire(venue_queries["fig1"])})
        _, before = self._get(server, "/metrics")
        assert 'generation="1"' in before
        code, swap = self._post(server, "/ingest",
                                {"venue": "fig1",
                                 "snapshot": venue_snapshots["fig1"]})
        assert code == 200 and swap["generation"] == 2
        _, after = self._get(server, "/metrics")
        gen1_rows = [line for line in after.splitlines()
                     if 'generation="1"' in line]
        # corridor still serves generation 1; fig1's retired
        # generation-1 series must be gone, not frozen.
        assert all('venue="corridor"' in line for line in gen1_rows)
        assert any('generation="2"' in line and 'venue="fig1"' in line
                   for line in after.splitlines())

    def test_ingest_rejects_garbage(self, server):
        code, doc = self._post(server, "/ingest",
                               {"venue": "fig1",
                                "snapshot": "/nonexistent.snap"})
        assert code == 400 and doc["status"] == "bad_request"
        code, doc = self._post(server, "/ingest", {"venue": "fig1"})
        assert code == 400
        code, doc = self._post(server, "/ingest",
                               {"snapshot": "x.snap"})
        assert code == 400

    def test_metrics_carry_venue_labels(self, server, venue_queries):
        self._post(server, "/search",
                   {"venue": "corridor",
                    "query": query_to_wire(venue_queries["corridor"])})
        code, text = self._get(server, "/metrics")
        assert code == 200
        assert 'ikrq_requests_total{status="ok",venue="corridor"}' in text
        assert 'ikrq_venue_active_generation{venue="corridor"} 1' in text
        assert 'ikrq_venue_quota_max_in_flight{venue="corridor"} 4' in text
        assert "ikrq_venues 2" in text
        assert ('ikrq_shard_queries_served{generation="1",shard=' in text
                or 'ikrq_shard_queries_served{generation="1",venue=' in text)


# ----------------------------------------------------------------------
# Tenancy bench
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestTenancyBench:
    def test_smoke_run_swaps_and_verifies(self, tmp_path):
        from repro.bench.tenancy import run_tenancy
        from repro.bench.throughput import append_trajectory
        entry = run_tenancy(venues=2, floors=1, rooms_per_floor=16,
                            words_per_room=3, shards=2, pool=3, repeat=2,
                            seed=11)
        assert entry["verified_identical"]
        assert entry["zero_dropped"]
        assert entry["swap_atomic"]
        assert entry["mismatches"] == 0
        assert entry["swap"]["generation"] == 2
        assert entry["swap"]["status"] == "ok"
        assert set(entry["per_venue"]) == {"mall-00", "mall-01"}
        artifact = tmp_path / "BENCH_throughput.json"
        append_trajectory(artifact, entry)
        doc = json.loads(artifact.read_text())
        assert doc["entries"][0]["mode"] == "tenancy"


# ----------------------------------------------------------------------
# Route-word bitmask satellite: masks are carried and faithful
# ----------------------------------------------------------------------
class TestRouteWordMasks:
    def test_routes_carry_exact_masks(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("latte", "apple"), k=3)
        ctx = engine.context(query)
        assert ctx._use_masks
        route = ctx.start_route()
        assert route.words_mask == fig1.kindex.iword_mask(route.words)
        answer = engine.search(query, "ToE")
        for result in answer.routes:
            mask = result.route.words_mask
            assert mask == fig1.kindex.iword_mask(result.route.words)
            assert mask.bit_count() == len(result.route.words)

    def test_mask_and_reference_paths_agree(self, fig1):
        from repro.space.baseline import build_reference_engine, \
            reference_context
        engine = IKRQEngine(fig1.space, fig1.kindex)
        reference = build_reference_engine(fig1.space, fig1.kindex)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=70.0,
                     keywords=("coffee", "phone"), k=3)
        fast = engine.search(query, "ToE")
        slow = reference.search(query, "ToE",
                                context=reference_context(reference, query))
        assert canonical_json(answer_to_wire(fast)) == canonical_json(
            answer_to_wire(slow))
        # The reference context never engages the mask path.
        ctx = reference_context(reference, query)
        assert not ctx._use_masks
        assert ctx.start_route().words_mask == 0

"""The sharded serving layer: wire format, affinity, admission,
metrics, shard pool, HTTP surface, and the serve throughput bench."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import IKRQ, IKRQEngine, QueryService, ServiceStats
from repro.serve import (AdmissionController, IKRQServer, MetricsRegistry,
                         ShardDispatcher, ShardPool, answer_to_wire,
                         canonical_json, query_from_wire, query_to_wire,
                         save_snapshot, shard_for)
from repro.serve.wire import point_from_wire, point_to_wire
from repro.geometry import Point


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    from repro.datasets import paper_fig1
    fixture = paper_fig1()
    engine = IKRQEngine(fixture.space, fixture.kindex)
    path = tmp_path_factory.mktemp("serve") / "fig1.snapshot.json"
    save_snapshot(path, engine)
    return str(path)


@pytest.fixture(scope="module")
def queries(fig1):
    return [
        IKRQ(ps=fig1.ps, pt=fig1.pt, delta=55.0 + 5.0 * i,
             keywords=("coffee",) if i % 2 else ("latte", "apple"), k=2)
        for i in range(4)
    ]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def test_point_round_trip(self):
        p = Point(7.25, 39.5, 1.5)
        assert point_from_wire(point_to_wire(p)) == p
        assert point_from_wire([1.0, 2.0]) == Point(1.0, 2.0, 0.0)

    def test_point_rejects_garbage(self):
        with pytest.raises(ValueError):
            point_from_wire([1.0])
        with pytest.raises(ValueError):
            point_from_wire("nope")

    def test_query_round_trip(self, queries):
        for query in queries:
            assert query_from_wire(query_to_wire(query)) == query

    def test_query_defaults(self):
        doc = {"ps": [0.0, 1.0], "pt": [2.0, 3.0], "delta": 10.0,
               "keywords": ["coffee"]}
        query = query_from_wire(doc)
        assert query.k == 1 and query.alpha == 0.5 and query.tau == 0.2

    def test_query_missing_field(self):
        with pytest.raises(ValueError, match="keywords"):
            query_from_wire({"ps": [0, 0], "pt": [1, 1], "delta": 5.0})

    def test_canonical_json_is_key_order_independent(self):
        assert (canonical_json({"b": 1, "a": [1.5]})
                == canonical_json({"a": [1.5], "b": 1}))


# ----------------------------------------------------------------------
# Affinity hashing
# ----------------------------------------------------------------------
class TestAffinity:
    def test_stable_and_in_range(self):
        ps, pt = [1.25, 2.5, 0.0], [3.0, 4.0, 0.0]
        first = shard_for(ps, pt, 4)
        assert 0 <= first < 4
        for _ in range(5):
            assert shard_for(ps, pt, 4) == first

    def test_spreads_over_shards(self):
        hits = {shard_for([float(i), 0.0, 0.0], [0.0, float(i), 0.0], 4)
                for i in range(64)}
        assert len(hits) == 4

    def test_single_shard(self):
        assert shard_for([1.0, 2.0, 0.0], [3.0, 4.0, 0.0], 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for([0.0, 0.0], [1.0, 1.0], 0)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_sheds_beyond_capacity(self):
        ctrl = AdmissionController(max_pending=2)
        assert ctrl.try_acquire() and ctrl.try_acquire()
        assert not ctrl.try_acquire()
        assert ctrl.shed == 1 and ctrl.admitted == 2
        ctrl.release()
        assert ctrl.try_acquire()
        assert ctrl.in_flight == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", status="ok")
        reg.inc("requests_total", status="ok")
        reg.inc("requests_total", status="overloaded")
        assert reg.counter_value("requests_total", status="ok") == 2
        text = reg.render()
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{status="ok"} 2' in text
        assert 'requests_total{status="overloaded"} 1' in text

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("in_flight", 3)
        reg.set_gauge("in_flight", 1)
        assert 'in_flight 1' in reg.render()

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            reg.observe("latency_seconds", value)
        text = reg.render()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1.0"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert 'latency_seconds_count 4' in text
        assert 'latency_seconds_sum 6.05' in text

    def test_merge_gauges_with_labels(self):
        reg = MetricsRegistry()
        reg.merge_gauges({"shard_queries": 7}, shard=1)
        assert 'shard_queries{shard="1"} 7' in reg.render()

    def test_drop_gauges_by_label_key(self):
        reg = MetricsRegistry()
        reg.set_gauge("served", 3, shard=0, generation=1)
        reg.set_gauge("served", 5, shard=0)
        reg.drop_gauges("generation")
        text = reg.render()
        assert 'generation="1"' not in text
        assert 'served{shard="0"} 5' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", venue='mall "A"\\east\nwing')
        text = reg.render()
        assert ('requests_total{venue="mall \\"A\\"\\\\east\\nwing"} 1'
                in text)
        # An unescaped newline would split the sample across lines.
        assert len(text.strip().splitlines()) == 2

    def test_escape_order_backslash_first(self):
        # A pre-escaped quote must not be double-unescapable: the
        # backslash escapes first, then the quote.
        from repro.serve.metrics import _escape_label_value
        assert _escape_label_value('\\"') == '\\\\\\"'
        assert _escape_label_value("plain") == "plain"

    def test_format_value(self):
        from repro.serve.metrics import _format_value
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"
        # repr keeps full float precision (no %g truncation).
        assert _format_value(0.1 + 0.2) == repr(0.1 + 0.2)

    def test_histogram_renders_consistent_under_concurrent_observe(self):
        reg = MetricsRegistry(buckets=(0.1, 1.0))
        stop = threading.Event()

        def pound():
            while not stop.is_set():
                reg.observe("latency_seconds", 0.05)

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            for _ in range(50):
                text = reg.render()
                for line in text.splitlines():
                    if line.startswith('latency_seconds_bucket{le="+Inf"}'):
                        inf_count = int(line.rsplit(" ", 1)[1])
                    elif line.startswith("latency_seconds_count"):
                        count = int(line.rsplit(" ", 1)[1])
                assert inf_count == count
        finally:
            stop.set()
            thread.join()


# ----------------------------------------------------------------------
# ServiceStats atomicity (satellite: thread-safe snapshotting)
# ----------------------------------------------------------------------
class TestServiceStats:
    def test_snapshot_is_a_consistent_copy(self):
        stats = ServiceStats()
        stats.add(queries_served=3, answer_hits=1)
        snap = stats.snapshot()
        stats.add(queries_served=1)
        assert snap.queries_served == 3 and snap.answer_hits == 1
        assert stats.queries_served == 4

    def test_unknown_field_rejected(self):
        stats = ServiceStats()
        with pytest.raises(TypeError):
            stats.add(bogus=1)
        with pytest.raises(TypeError):
            ServiceStats(bogus=1)

    def test_concurrent_increments_are_not_lost(self):
        stats = ServiceStats()

        def bump():
            for _ in range(500):
                stats.add(queries_served=1, answer_misses=1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        assert snap.queries_served == 2000
        assert snap.answer_misses == 2000

    def test_service_snapshot_reports_matrix_evictions(self, fig1):
        engine = IKRQEngine(fig1.space, fig1.kindex,
                            door_matrix_max_rows=2)
        service = QueryService(engine, workers=1)
        query = IKRQ(ps=fig1.ps, pt=fig1.pt, delta=60.0,
                     keywords=("coffee", "apple"), k=2)
        service.search(query, "KoE*")
        snap = service.stats_snapshot()
        assert snap.door_matrix_evictions > 0
        assert snap.door_matrix_evictions == engine.door_matrix().evictions
        assert snap.queries_served == 1


# ----------------------------------------------------------------------
# Shard pool + dispatcher (process level)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestShardPool:
    def test_answers_byte_identical_and_affine(self, snapshot_path,
                                               fig1_engine, queries):
        with ShardPool(snapshot_path, shards=2) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=8)
            expected_shard = shard_for(
                point_to_wire(queries[0].ps), point_to_wire(queries[0].pt), 2)
            for query in queries:
                response = dispatcher.submit(query_to_wire(query), "ToE")
                assert response["status"] == "ok"
                assert response["shard"] == expected_shard
                expected = answer_to_wire(fig1_engine.search(query, "ToE"))
                got = {"algorithm": response["algorithm"],
                       "routes": response["routes"]}
                assert canonical_json(got) == canonical_json(expected)
            stats = pool.stats()
            served = {doc["shard"]: doc["stats"]["queries_served"]
                      for doc in stats}
            # (ps, pt)-affinity: every query hit the same warm shard.
            assert served[expected_shard] == len(queries)
            assert served[1 - expected_shard] == 0

    def test_workers_skip_index_rebuild(self, snapshot_path):
        from repro.space.graph import DoorGraph
        from repro.space.skeleton import SkeletonIndex
        csr_before = DoorGraph.csr_builds
        s2s_before = SkeletonIndex.s2s_builds
        with ShardPool(snapshot_path, shards=2) as pool:
            # Workers report their post-load build counters; forked
            # children inherit the parent's count and must not add to
            # it (spawned children must show zero builds).
            for info in pool.worker_builds:
                assert info["csr_builds"] <= csr_before
                assert info["s2s_builds"] <= s2s_before

    def test_sheds_when_queue_full(self, snapshot_path, queries):
        with ShardPool(snapshot_path, shards=1, allow_sleep=True) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=1)
            doc = query_to_wire(queries[0])
            slow = {}

            def occupy():
                slow["response"] = dispatcher.submit(doc, "ToE", sleep=1.0)

            thread = threading.Thread(target=occupy)
            thread.start()
            # Wait until the slow request holds the admission slot.
            deadline = time.time() + 5.0
            while dispatcher.admission.in_flight == 0:
                if time.time() > deadline:
                    pytest.fail("slow request never admitted")
                time.sleep(0.01)
            shed = dispatcher.submit(query_to_wire(queries[1]), "ToE")
            assert shed["status"] == "overloaded"
            assert shed["venue"] == "default"
            # Sheds are always traced: the response carries a trace_id
            # and the retained trace records the shed decision.
            doc = dispatcher.trace_buffer.get(shed["trace_id"])
            assert doc is not None and doc["reason"] == "shed"
            assert dispatcher.admission.shed == 1
            thread.join()
            assert slow["response"]["status"] == "ok"
            # Capacity freed: the same query is admitted now.
            again = dispatcher.submit(query_to_wire(queries[1]), "ToE")
            assert again["status"] == "ok"

    def test_expired_deadline_is_not_evaluated(self, snapshot_path, queries):
        with ShardPool(snapshot_path, shards=1, allow_sleep=True) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            doc = query_to_wire(queries[0])
            results = {}

            def occupy():
                results["slow"] = dispatcher.submit(doc, "ToE", sleep=0.6)

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(0.1)
            # Queued behind the sleeper; expired by the time the shard
            # dequeues it.
            results["late"] = dispatcher.submit(doc, "ToE", deadline_s=0.1)
            thread.join()
            assert results["slow"]["status"] == "ok"
            assert results["late"]["status"] in ("expired", "timeout")

    def test_bad_request_paths(self, snapshot_path):
        with ShardPool(snapshot_path, shards=1) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            assert dispatcher.submit(None)["status"] == "bad_request"
            assert (dispatcher.submit({"ps": [0.0, 0.0]})["status"]
                    == "bad_request")
            broken = dispatcher.submit(
                {"ps": [0.0, 0.0], "pt": [1.0, 1.0], "delta": -5.0,
                 "keywords": ["coffee"]})
            assert broken["status"] == "error"

    def test_stats_round_trip(self, snapshot_path, queries):
        with ShardPool(snapshot_path, shards=2) as pool:
            dispatcher = ShardDispatcher(pool, max_pending=4)
            dispatcher.submit(query_to_wire(queries[0]), "ToE")
            stats = pool.stats()
            assert len(stats) == 2
            for doc in stats:
                assert doc["status"] == "ok"
                assert set(doc["stats"]) == set(ServiceStats.FIELDS)


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestHTTPServer:
    @pytest.fixture()
    def server(self, snapshot_path):
        with IKRQServer(snapshot_path, workers=2, max_pending=8) as server:
            server.start()
            yield server

    def _post(self, server, doc):
        host, port = server.address
        body = json.dumps(doc).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}/search", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _get(self, server, path):
        host, port = server.address
        with urllib.request.urlopen(
                f"http://{host}:{port}{path}", timeout=30) as resp:
            return resp.status, resp.read().decode("utf-8")

    def test_search_byte_identical(self, server, fig1_engine, queries):
        for query in queries:
            code, doc = self._post(server, {"query": query_to_wire(query),
                                            "algorithm": "ToE"})
            assert code == 200 and doc["status"] == "ok"
            expected = answer_to_wire(fig1_engine.search(query, "ToE"))
            got = {"algorithm": doc["algorithm"], "routes": doc["routes"]}
            assert canonical_json(got) == canonical_json(expected)

    def test_bad_request_is_400(self, server):
        code, doc = self._post(server, {"query": {"ps": [0.0, 0.0]}})
        assert code == 400 and doc["status"] == "bad_request"

    def test_non_object_body_is_400(self, server):
        code, doc = self._post(server, [1, 2, 3])
        assert code == 400 and doc["status"] == "bad_request"

    def test_healthz(self, server):
        code, text = self._get(server, "/healthz")
        assert code == 200
        doc = json.loads(text)
        assert doc["status"] == "ok"
        assert doc["shards"] == 2
        assert doc["live_shards"] == 2
        assert doc["venues"] == 1
        assert doc["restarts_total"] == 0
        workers = doc["workers"]
        assert [w["shard"] for w in workers] == [0, 1]
        for worker in workers:
            assert worker["state"] == "up"
            assert worker["alive"] is True
            assert worker["boot"] == 0

    def test_unknown_path_is_404(self, server):
        try:
            self._get(server, "/nope")
            pytest.fail("expected HTTP 404")
        except urllib.error.HTTPError as err:
            assert err.code == 404

    def test_metrics_scrape(self, server, queries):
        self._post(server, {"query": query_to_wire(queries[0])})
        code, text = self._get(server, "/metrics")
        assert code == 200
        assert 'ikrq_requests_total{status="ok",venue="default"}' in text
        assert "ikrq_request_latency_seconds_bucket" in text
        assert "ikrq_shard_queries_served" in text
        assert "ikrq_shards 2" in text
        assert 'ikrq_venue_active_generation{venue="default"} 1' in text
        assert "ikrq_venues 1" in text


# ----------------------------------------------------------------------
# Serve throughput bench
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestServeBench:
    def test_smoke_run_verifies_identity(self, tmp_path, monkeypatch):
        from repro.bench.throughput import (append_trajectory,
                                            run_serve_throughput)
        result = run_serve_throughput(venue="fig1", pool=4, repeat=2,
                                      endpoints=2, workers=2, seed=5)
        assert result["verified_identical"]
        assert result["queries"] == 8
        assert result["sharded_qps"] > 0 and result["threaded_qps"] > 0
        artifact = tmp_path / "BENCH_throughput.json"
        append_trajectory(artifact, result)
        append_trajectory(artifact, result)
        doc = json.loads(artifact.read_text())
        assert doc["format"] == "repro-bench-trajectory"
        assert len(doc["entries"]) == 2
        assert all(e["mode"] == "serve" for e in doc["entries"])

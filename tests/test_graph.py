"""Tests for the door graph: Dijkstra, regular continuations, matrix."""

import math

import pytest

from repro.geometry import Point
from repro.space import DoorGraph
from repro.space.graph import DoorMatrix

INF = math.inf


@pytest.fixture(scope="module")
def graph(fig1):
    return DoorGraph(fig1.space)


class TestAdjacency:
    def test_edges_within_partition(self, fig1, graph):
        d2 = fig1.did("d2")
        neighbours = {n for n, _, _ in graph.neighbours(d2)}
        # Through v2 one can reach d5 and d6; through v1, d1 and d3.
        assert {fig1.did("d5"), fig1.did("d6"),
                fig1.did("d1"), fig1.did("d3")} <= neighbours

    def test_no_self_loops(self, fig1, graph):
        for did in fig1.space.doors:
            assert all(n != did for n, _, _ in graph.neighbours(did))

    def test_edge_weight_is_euclidean(self, fig1, graph):
        d2 = fig1.did("d2")
        for n, via, w in graph.neighbours(d2):
            pos_a = fig1.space.door(d2).position
            pos_b = fig1.space.door(n).position
            assert w == pytest.approx(pos_a.distance_to(pos_b))

    def test_num_edges_positive(self, graph):
        assert graph.num_edges() > 0


class TestDijkstra:
    def test_trivial_source(self, fig1, graph):
        dist, pred = graph.dijkstra(fig1.did("d2"))
        assert dist[fig1.did("d2")] == 0.0

    def test_distances_satisfy_triangle(self, fig1, graph):
        """dist is a shortest-path metric: no edge can shortcut it."""
        source = fig1.did("d1")
        dist, _ = graph.dijkstra(source)
        for u in fig1.space.doors:
            if u not in dist:
                continue
            for v, _, w in graph.neighbours(u):
                assert dist.get(v, INF) <= dist[u] + w + 1e-9

    def test_banned_doors_are_avoided(self, fig1, graph):
        d1, d13 = fig1.did("d1"), fig1.did("d13")
        banned = frozenset({fig1.did("d13")})
        dist, _ = graph.dijkstra(d1, banned=banned)
        assert d13 not in dist

    def test_banned_forces_detour(self, fig1, graph):
        # From d2 to d7 directly via v2->d6->(v3)->d7 or via d5.
        d2, d7 = fig1.did("d2"), fig1.did("d7")
        free, _ = graph.dijkstra(d2)
        detour, _ = graph.dijkstra(
            d2, banned=frozenset({fig1.did("d5")}))
        assert detour[d7] >= free[d7]

    def test_bound_cuts_search(self, fig1, graph):
        dist, _ = graph.dijkstra(fig1.did("d1"), bound=5.0)
        assert all(d <= 5.0 for d in dist.values())

    def test_early_exit_with_targets(self, fig1, graph):
        d1, d3 = fig1.did("d1"), fig1.did("d3")
        dist, _ = graph.dijkstra(d1, targets={d3})
        assert d3 in dist


class TestShortestRoute:
    def test_route_reconstruction(self, fig1, graph):
        d1, d7 = fig1.did("d1"), fig1.did("d7")
        result = graph.shortest_route(d1, d7)
        assert result is not None
        doors, vias, dist = result
        assert doors[-1] == d7
        assert len(doors) == len(vias)
        # Recompute the distance along the reconstruction.
        total, prev = 0.0, d1
        for door in doors:
            total += fig1.space.door(prev).position.distance_to(
                fig1.space.door(door).position)
            prev = door
        assert total == pytest.approx(dist)

    def test_route_same_source_target(self, fig1, graph):
        d1 = fig1.did("d1")
        assert graph.shortest_route(d1, d1) == ([], [], 0.0)

    def test_unreachable_returns_none(self, fig1, graph):
        d1, d15 = fig1.did("d1"), fig1.did("d15")
        out = graph.shortest_route(d1, d15, bound=1.0)
        assert out is None

    def test_first_hop_via_restriction(self, fig1, graph):
        # From d13 (v5/v7): restricted to leave v7 first, the path to
        # d5 cannot take the direct v5 edge.
        d13, d5 = fig1.did("d13"), fig1.did("d5")
        free = graph.shortest_route(d13, d5)
        restricted = graph.shortest_route(
            d13, d5, first_hop_via=fig1.pid("v7"))
        assert restricted is not None
        assert restricted[2] > free[2]
        # First via must be v7.
        assert restricted[1][0] == fig1.pid("v7")


class TestMultiTarget:
    def test_routes_to_partition_doors(self, fig1, graph):
        d2 = fig1.did("d2")
        targets = set(fig1.space.p2d_enter(fig1.pid("v3")))
        routes = graph.multi_target_routes(
            d2, fig1.pid("v2"), targets)
        assert fig1.did("d6") in routes
        doors, vias, dist = routes[fig1.did("d6")]
        assert doors == [fig1.did("d6")]
        assert vias == [fig1.pid("v2")]

    def test_routes_from_point(self, fig1, graph):
        targets = {fig1.did("d6"), fig1.did("d7")}
        routes = graph.routes_from_point(
            fig1.ps, fig1.pid("v1"), targets)
        assert set(routes) == targets
        for target, (doors, vias, dist) in routes.items():
            assert doors[-1] == target
            assert vias[0] == fig1.pid("v1")

    def test_routes_from_point_respects_banned(self, fig1, graph):
        targets = {fig1.did("d7")}
        banned = frozenset({fig1.did("d2"), fig1.did("d3"), fig1.did("d1")})
        routes = graph.routes_from_point(
            fig1.ps, fig1.pid("v1"), targets, banned=banned)
        assert routes == {}


class TestPointDistances:
    def test_point_to_point_same_partition(self, fig1, graph):
        p = fig1.points["p1"]
        q = p.translated(dx=2.0)
        assert graph.point_to_point_distance(p, q) == pytest.approx(2.0)

    def test_point_to_point_matches_manual(self, fig1, graph):
        """ps -> pt must be ≤ the hand-computed (ps, d3, pt) walk."""
        space = fig1.space
        d3 = space.door(fig1.did("d3")).position
        manual = fig1.ps.distance_to(d3) + d3.distance_to(fig1.pt)
        assert graph.point_to_point_distance(fig1.ps, fig1.pt) <= manual + 1e-9

    def test_distances_from_point_bounded(self, fig1, graph):
        dists = graph.distances_from_point(fig1.ps, bound=10.0)
        assert dists
        assert all(v <= 10.0 for v in dists.values())


class TestDoorMatrix:
    def test_matches_dijkstra(self, fig1, graph):
        matrix = DoorMatrix(graph)
        d1, d7 = fig1.did("d1"), fig1.did("d7")
        dist, _ = graph.dijkstra(d1)
        assert matrix.distance(d1, d7) == pytest.approx(dist[d7])

    def test_route_roundtrip(self, fig1, graph):
        matrix = DoorMatrix(graph)
        d1, d7 = fig1.did("d1"), fig1.did("d7")
        doors, vias, dist = matrix.route(d1, d7)
        assert doors[-1] == d7
        assert dist == pytest.approx(matrix.distance(d1, d7))

    def test_lazy_rows(self, fig1, graph):
        matrix = DoorMatrix(graph)
        assert matrix.num_cached_rows() == 0
        matrix.distance(fig1.did("d1"), fig1.did("d7"))
        assert matrix.num_cached_rows() == 1

    def test_eager_fills_all_rows(self, fig1, graph):
        matrix = DoorMatrix(graph, eager=True)
        assert matrix.num_cached_rows() == fig1.space.num_doors
        assert matrix.estimated_bytes() > 0

    def test_unreachable_pair(self, fig1, graph):
        matrix = DoorMatrix(graph)
        # Every door pair in fig1 is connected; use a bound-free check
        # of self-distance instead.
        d1 = fig1.did("d1")
        assert matrix.distance(d1, d1) == 0.0

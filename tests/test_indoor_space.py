"""Tests for the indoor space model: entities, builder, topology."""

import pytest

from repro.geometry import Point, Rect
from repro.space import (
    Door,
    IndoorSpace,
    IndoorSpaceBuilder,
    Partition,
    PartitionKind,
)


class TestEntities:
    def test_partition_floor_and_level(self):
        p = Partition(0, Rect(0, 0, 5, 5, level=2.0))
        assert p.floor == 2
        assert p.level == 2.0

    def test_partition_contains(self):
        p = Partition(0, Rect(0, 0, 5, 5))
        assert p.contains(Point(2, 2))
        assert not p.contains(Point(9, 9))

    def test_door_two_way(self):
        d = Door(0, Point(1, 1), frozenset({1, 2}), frozenset({1, 2}))
        assert d.partitions() == frozenset({1, 2})
        assert not d.is_staircase_door

    def test_door_one_way(self):
        d = Door(0, Point(1, 1), enters=frozenset({2}), leaves=frozenset({1}))
        assert d.partitions() == frozenset({1, 2})

    def test_staircase_door_detection(self):
        d = Door(0, Point(1, 1, 1.5), frozenset({1}), frozenset({1}))
        assert d.is_staircase_door
        assert d.floor == 1

    def test_default_kind_is_room(self):
        p = Partition(0, Rect(0, 0, 1, 1))
        assert p.kind is PartitionKind.ROOM


class TestBuilder:
    def test_builds_and_resolves_names(self, corridor):
        space, rooms, cells, b = corridor
        assert b.pid("room0") == rooms[0]
        assert b.did("rd0") in space.doors

    def test_duplicate_partition_name_rejected(self):
        b = IndoorSpaceBuilder()
        b.add_partition("a", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            b.add_partition("a", Rect(1, 0, 2, 1))

    def test_duplicate_door_name_rejected(self):
        b = IndoorSpaceBuilder()
        b.add_partition("a", Rect(0, 0, 2, 2))
        b.add_partition("b", Rect(2, 0, 4, 2))
        b.add_door("d", Point(2, 1), between=("a", "b"))
        with pytest.raises(ValueError):
            b.add_door("d", Point(2, 1.5), between=("a", "b"))

    def test_unknown_partition_name_in_door(self):
        b = IndoorSpaceBuilder()
        b.add_partition("a", Rect(0, 0, 1, 1))
        with pytest.raises(KeyError):
            b.add_door("d", Point(0, 0), between=("a", "nope"))

    def test_between_and_enters_mutually_exclusive(self):
        b = IndoorSpaceBuilder()
        b.add_partition("a", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            b.add_door("d", Point(0, 0), between=("a",), enters=("a",))

    def test_door_must_connect_something(self):
        b = IndoorSpaceBuilder()
        with pytest.raises(ValueError):
            b.add_door("d", Point(0, 0))

    def test_one_way_door(self):
        b = IndoorSpaceBuilder()
        a = b.add_partition("a", Rect(0, 0, 2, 2))
        c = b.add_partition("c", Rect(2, 0, 4, 2))
        d = b.add_door("d", Point(2, 1), enters=("c",), leaves=("a",))
        space = b.build()
        assert space.d2p_enter(d) == frozenset({c})
        assert space.d2p_leave(d) == frozenset({a})


class TestIndoorSpace:
    def test_validates_door_references(self):
        door = Door(0, Point(0, 0), frozenset({7}), frozenset({7}))
        with pytest.raises(ValueError):
            IndoorSpace([Partition(0, Rect(0, 0, 1, 1))], [door])

    def test_topology_mappings_roundtrip(self, corridor):
        space, rooms, cells, b = corridor
        rd0 = b.did("rd0")
        assert rooms[0] in space.d2p_enter(rd0)
        assert rd0 in space.p2d_enter(rooms[0])
        assert rd0 in space.p2d_leave(rooms[0])

    def test_p2d_of_middle_cell(self, corridor):
        space, rooms, cells, b = corridor
        # cell1 has: room door rd1, cd1 (to cell0), cd2 (to cell2).
        assert len(space.p2d_leave(cells[1])) == 3

    def test_host_partition_basic(self, corridor):
        space, rooms, cells, b = corridor
        assert space.host_partition(Point(5, 15)).pid == rooms[0]
        assert space.host_partition(Point(5, 5)).pid == cells[0]

    def test_host_partition_outside_raises(self, corridor):
        space, *_ = corridor
        with pytest.raises(ValueError):
            space.host_partition(Point(-50, -50))

    def test_host_partition_prefers_smaller_on_tie(self):
        b = IndoorSpaceBuilder()
        big = b.add_partition("big", Rect(0, 0, 20, 20))
        small = b.add_partition("small", Rect(18, 0, 20, 2))
        b.add_door("d", Point(18, 1), between=("big", "small"))
        space = b.build()
        # The corner point lies on both footprints; the smaller wins.
        assert space.host_partition(Point(19, 1)).pid == small

    def test_num_floors(self, fig1):
        assert fig1.space.num_floors == 1

    def test_staircase_index_empty_on_single_floor(self, fig1):
        assert fig1.space.staircase_doors_on_floor(0) == []

    def test_counts(self, fig1):
        assert fig1.space.num_partitions == 12
        assert fig1.space.num_doors == 17


class TestMultiFloorTopology:
    @pytest.fixture(scope="class")
    def tower(self):
        """Two stacked rooms joined by a staircase."""
        b = IndoorSpaceBuilder()
        b.add_partition("low", Rect(0, 0, 10, 10, level=0.0))
        b.add_partition("high", Rect(0, 0, 10, 10, level=1.0))
        b.add_partition("stair0", Rect(10, 0, 12, 2, level=0.0),
                        PartitionKind.STAIRCASE)
        b.add_partition("stair1", Rect(10, 0, 12, 2, level=1.0),
                        PartitionKind.STAIRCASE)
        b.add_door("e0", Point(10, 1, 0.0), between=("low", "stair0"))
        b.add_door("e1", Point(10, 1, 1.0), between=("high", "stair1"))
        b.add_door("up", Point(11, 1, 0.5), between=("stair0", "stair1"))
        return b.build(), b

    def test_staircase_door_serves_both_floors(self, tower):
        space, b = tower
        up = b.did("up")
        assert up in space.staircase_doors_on_floor(0)
        assert up in space.staircase_doors_on_floor(1)

    def test_staircase_partitions_listed(self, tower):
        space, b = tower
        assert {p.name for p in space.staircase_partitions()} == {
            "stair0", "stair1"}

    def test_num_floors_two(self, tower):
        space, _ = tower
        assert space.num_floors == 2

"""The open-loop load model behind ``repro.bench soak``.

Everything here is pure and seeded — no servers, no sleeping.  The
statistical assertions use generous bounds (several standard
deviations wide at the chosen sample sizes) so they are deterministic
for the pinned seeds and would stay stable across reseeding.
"""

from __future__ import annotations

import json
import random
import statistics

import pytest

from repro.bench.load_model import (ARRIVAL_PROCESSES, DEFAULT_MIX,
                                    Arrival, LoadModelConfig,
                                    bursty_arrivals, build_schedule,
                                    corrected_latencies, pick_weighted,
                                    poisson_arrivals, schedule_digest,
                                    serialized_completions, zipf_weights)
from repro.bench.soak import SLOGates, _recovery_seconds


class TestPoissonArrivals:
    def test_count_matches_rate(self):
        # 50 q/s for 40 s: expect 2000 arrivals, sd ~45; a +/-10%
        # band is ~4.4 sigma wide.
        out = poisson_arrivals(50.0, 40.0, random.Random(7))
        assert 1800 <= len(out) <= 2200

    def test_sorted_and_in_window(self):
        out = poisson_arrivals(20.0, 10.0, random.Random(3))
        assert out == sorted(out)
        assert all(0.0 <= t < 10.0 for t in out)

    def test_mean_gap_is_inverse_rate(self):
        out = poisson_arrivals(100.0, 60.0, random.Random(5))
        gaps = [b - a for a, b in zip(out, out[1:])]
        assert statistics.mean(gaps) == pytest.approx(0.01, rel=0.15)

    def test_gap_memorylessness_cv(self):
        # Exponential gaps have coefficient of variation 1.
        out = poisson_arrivals(100.0, 60.0, random.Random(5))
        gaps = [b - a for a, b in zip(out, out[1:])]
        cv = statistics.pstdev(gaps) / statistics.mean(gaps)
        assert cv == pytest.approx(1.0, abs=0.15)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, random.Random(1))
        with pytest.raises(ValueError):
            poisson_arrivals(5.0, 0.0, random.Random(1))


class TestBurstyArrivals:
    def test_long_run_rate_is_normalised(self):
        # The ON rate is boosted so the long-run mean matches the
        # nominal rate despite the silent OFF phases.
        out = bursty_arrivals(50.0, 120.0, random.Random(11),
                              on_s=1.0, off_s=1.0)
        assert len(out) / 120.0 == pytest.approx(50.0, rel=0.15)

    def test_burstier_than_poisson(self):
        # Per-second counts: the on/off modulation must add variance
        # over the memoryless baseline at the same nominal rate.
        def per_second_var(times):
            counts = [0] * 120
            for t in times:
                counts[int(t)] += 1
            return statistics.pvariance(counts)

        rng = random.Random(13)
        bursty = bursty_arrivals(40.0, 120.0, rng, on_s=0.5, off_s=0.5)
        poisson = poisson_arrivals(40.0, 120.0, random.Random(13))
        assert per_second_var(bursty) > 2.0 * per_second_var(poisson)

    def test_off_phases_are_silent_by_default(self):
        out = bursty_arrivals(30.0, 60.0, random.Random(17),
                              on_s=0.5, off_s=2.0)
        gaps = [b - a for a, b in zip(out, out[1:])]
        # With mean OFF dwell 2 s, some inter-arrival gaps must be
        # OFF-phase sized - far beyond anything Poisson at the
        # boosted ON rate would produce.
        assert max(gaps) > 1.0

    def test_off_rate_fraction_keeps_the_tail_warm(self):
        out = bursty_arrivals(30.0, 120.0, random.Random(19),
                              on_s=0.5, off_s=2.0,
                              off_rate_fraction=0.25)
        assert len(out) / 120.0 == pytest.approx(30.0, rel=0.2)

    def test_rejects_bad_inputs(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            bursty_arrivals(0.0, 10.0, rng)
        with pytest.raises(ValueError):
            bursty_arrivals(5.0, 10.0, rng, on_s=0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(5.0, 10.0, rng, off_rate_fraction=1.5)


class TestWeightedMixes:
    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(8, s=1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_zero_exponent_is_uniform(self):
        weights = zipf_weights(4, s=0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_zipf_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, s=-1.0)

    def test_pick_weighted_frequencies(self):
        rng = random.Random(23)
        weights = zipf_weights(4, s=1.0)
        counts = {name: 0 for name in "abcd"}
        for _ in range(20_000):
            counts[pick_weighted("abcd", weights, rng)] += 1
        for name, weight in zip("abcd", weights):
            assert counts[name] / 20_000 == pytest.approx(weight,
                                                          rel=0.1)

    def test_pick_weighted_rejects_mismatch(self):
        with pytest.raises(ValueError):
            pick_weighted(["a"], [0.5, 0.5], random.Random(1))
        with pytest.raises(ValueError):
            pick_weighted([], [], random.Random(1))


class TestSchedules:
    CFG = LoadModelConfig(rate_qps=40.0, duration_s=30.0,
                          venues=("mall-00", "mall-01", "mall-02"),
                          pool=6, seed=42)

    def test_deterministic_and_digest_stable(self):
        a = build_schedule(self.CFG)
        b = build_schedule(self.CFG)
        assert a == b
        assert schedule_digest(a) == schedule_digest(b)

    def test_seed_changes_the_schedule(self):
        other = LoadModelConfig(rate_qps=40.0, duration_s=30.0,
                                venues=self.CFG.venues, pool=6,
                                seed=43)
        assert (schedule_digest(build_schedule(self.CFG))
                != schedule_digest(build_schedule(other)))

    def test_zipf_tenant_frequencies(self):
        schedule = build_schedule(self.CFG)
        counts = {venue: 0 for venue in self.CFG.venues}
        for arrival in schedule:
            counts[arrival.venue] += 1
        expected = zipf_weights(3, self.CFG.zipf_s)
        total = len(schedule)
        for venue, weight in zip(self.CFG.venues, expected):
            assert counts[venue] / total == pytest.approx(weight,
                                                          rel=0.2)

    def test_algorithm_mix_frequencies(self):
        schedule = build_schedule(self.CFG)
        counts = {name: 0 for name, _ in DEFAULT_MIX}
        for arrival in schedule:
            counts[arrival.algorithm] += 1
        for name, weight in DEFAULT_MIX:
            assert counts[name] / len(schedule) == pytest.approx(
                weight, rel=0.25)

    def test_query_indices_stay_in_pool(self):
        assert all(0 <= a.query < self.CFG.pool
                   for a in build_schedule(self.CFG))

    def test_bursty_process_is_reachable(self):
        cfg = LoadModelConfig(rate_qps=40.0, duration_s=10.0,
                              venues=("v",), pool=2, seed=1,
                              process="bursty", on_s=0.5, off_s=0.5)
        assert build_schedule(cfg)

    def test_digest_survives_json_round_trip(self):
        schedule = build_schedule(self.CFG)
        wired = json.loads(json.dumps(
            [[round(a.at_s, 9), a.venue, a.algorithm, a.query]
             for a in schedule]))
        again = [Arrival(at_s=at, venue=v, algorithm=alg, query=q)
                 for at, v, alg, q in wired]
        assert schedule_digest(again) == schedule_digest(schedule)


class TestLoadModelConfig:
    def test_round_trip(self):
        cfg = LoadModelConfig(rate_qps=25.0, duration_s=8.0,
                              venues=("a", "b"), pool=4, seed=9,
                              process="bursty", zipf_s=0.9,
                              mix=(("ToE", 0.7), ("KoE", 0.3)),
                              on_s=0.5, off_s=0.25,
                              off_rate_fraction=0.1)
        assert LoadModelConfig.from_doc(cfg.to_doc()) == cfg

    def test_round_trip_reproduces_the_schedule(self):
        cfg = TestSchedules.CFG
        doc = json.loads(json.dumps(cfg.to_doc()))
        assert (schedule_digest(build_schedule(
                    LoadModelConfig.from_doc(doc)))
                == schedule_digest(build_schedule(cfg)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadModelConfig(rate_qps=1.0, duration_s=1.0,
                            venues=("a",), pool=1, seed=0,
                            process="fractal")
        with pytest.raises(ValueError):
            LoadModelConfig(rate_qps=1.0, duration_s=1.0,
                            venues=(), pool=1, seed=0)
        with pytest.raises(ValueError):
            LoadModelConfig(rate_qps=1.0, duration_s=1.0,
                            venues=("a",), pool=0, seed=0)
        with pytest.raises(ValueError):
            LoadModelConfig(rate_qps=1.0, duration_s=1.0,
                            venues=("a",), pool=1, seed=0,
                            mix=(("ToE", 0.0),))

    def test_known_processes(self):
        assert ARRIVAL_PROCESSES == ("poisson", "bursty")


class TestCoordinatedOmission:
    def test_idle_server_adds_nothing(self):
        intended = [0.0, 1.0, 2.0]
        done = serialized_completions(intended, [0.1, 0.1, 0.1])
        assert done == pytest.approx([0.1, 1.1, 2.1])
        assert corrected_latencies(intended, done) == pytest.approx(
            [0.1, 0.1, 0.1])

    def test_stall_is_charged_to_everyone_behind_it(self):
        # Request 0 stalls for 5 s; requests 1..4 arrive every 100 ms
        # with 10 ms service.  Closed-loop accounting would report
        # 10 ms for each of them; the corrected view charges the queue.
        intended = [0.0, 0.1, 0.2, 0.3, 0.4]
        service = [5.0, 0.01, 0.01, 0.01, 0.01]
        done = serialized_completions(intended, service)
        corrected = corrected_latencies(intended, done)
        assert corrected[0] == pytest.approx(5.0)
        assert corrected[1] == pytest.approx(5.0 + 0.01 - 0.1)
        assert corrected[4] == pytest.approx(5.0 + 0.04 - 0.4)
        assert min(corrected[1:]) > 100 * max(service[1:])

    def test_serialized_completions_validation(self):
        with pytest.raises(ValueError):
            serialized_completions([0.0], [0.1, 0.2])
        with pytest.raises(ValueError):
            serialized_completions([0.0], [-0.1])

    def test_corrected_latencies_validation(self):
        with pytest.raises(ValueError):
            corrected_latencies([0.0, 1.0], [0.5])
        with pytest.raises(ValueError):
            corrected_latencies([1.0], [0.5])


class TestSLOGates:
    PASSING = {
        "latency_from_intended_ms": {"p99_ms": 120.0},
        "shed_rate": 0.0,
        "failed": 0,
        "spot_checks": {"checked": 10, "mismatches": 0},
    }

    def test_passing_phase(self):
        gates = SLOGates(p99_ms=500.0).evaluate(self.PASSING)
        assert gates["passed"]

    def test_each_gate_can_fail_alone(self):
        slo = SLOGates(p99_ms=500.0, max_shed_rate=0.01)
        for patch in ({"latency_from_intended_ms": {"p99_ms": 900.0}},
                      {"shed_rate": 0.5},
                      {"failed": 3},
                      {"spot_checks": {"checked": 10, "mismatches": 1}}):
            phase = {**self.PASSING, **patch}
            gates = slo.evaluate(phase)
            assert not gates["passed"], patch

    def test_missing_latency_fails_closed(self):
        phase = {**self.PASSING, "latency_from_intended_ms": {}}
        assert not SLOGates().evaluate(phase)["passed"]

    def test_to_doc(self):
        assert SLOGates(p99_ms=250.0, max_shed_rate=0.05).to_doc() == {
            "p99_ms": 250.0, "max_shed_rate": 0.05}


class TestRecoverySeconds:
    @staticmethod
    def sample(intended, latency_s=0.01, status="ok"):
        return {"intended": intended, "started": intended,
                "ended": intended + latency_s, "status": status,
                "venue": "v", "algorithm": "ToE",
                "checked": False, "identical": None}

    def test_immediate_recovery(self):
        samples = [self.sample(0.1 * i) for i in range(40)]
        assert _recovery_seconds(samples, SLOGates(p99_ms=100.0),
                                 4.0) == 0.0

    def test_recovery_after_a_slow_start(self):
        slow = [self.sample(0.1 * i, latency_s=2.0) for i in range(10)]
        fast = [self.sample(1.0 + 0.1 * i) for i in range(30)]
        assert _recovery_seconds(slow + fast, SLOGates(p99_ms=100.0),
                                 4.0) == 1.0

    def test_failures_block_recovery(self):
        samples = [self.sample(0.1 * i) for i in range(40)]
        samples.append(self.sample(3.9, status="transport_error"))
        assert _recovery_seconds(samples, SLOGates(p99_ms=100.0),
                                 4.0) is None

    def test_sheds_do_not_block_recovery(self):
        samples = [self.sample(0.1 * i) for i in range(40)]
        samples.append(self.sample(3.9, status="overloaded"))
        assert _recovery_seconds(samples, SLOGates(p99_ms=100.0),
                                 4.0) == 0.0

    def test_no_samples_is_no_recovery(self):
        assert _recovery_seconds([], SLOGates(), 4.0) is None

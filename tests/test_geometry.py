"""Unit tests for the geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import FLOOR_HEIGHT, Point, Rect, euclidean

finite = st.floats(min_value=-1e4, max_value=1e4,
                   allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_same_floor(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_module_euclidean(self):
        a, b = Point(1, 2), Point(4, 6)
        assert euclidean(a, b) == a.distance_to(b)

    def test_vertical_component_uses_floor_height(self):
        a = Point(0, 0, 0.0)
        b = Point(0, 0, 0.5)
        assert a.distance_to(b) == pytest.approx(FLOOR_HEIGHT / 2)

    def test_stairway_length_is_20m(self):
        """Hall door -> half-level stair door -> hall door ≈ 20 m."""
        lower = Point(0, 0, 0.0)
        mid = Point(0, 0, 0.5)
        upper = Point(0, 0, 1.0)
        total = lower.distance_to(mid) + mid.distance_to(upper)
        assert total == pytest.approx(20.0)

    def test_planar_distance_ignores_level(self):
        a = Point(0, 0, 0)
        b = Point(3, 4, 2)
        assert a.planar_distance_to(b) == 5.0

    def test_floor_of_half_level_rounds_down(self):
        assert Point(0, 0, 1.5).floor == 1

    def test_same_floor(self):
        assert Point(0, 0, 1.0).same_floor(Point(9, 9, 1.0))
        assert not Point(0, 0, 1.0).same_floor(Point(0, 0, 1.5))

    def test_translated(self):
        p = Point(1, 2, 3).translated(dx=1, dy=-2, dlevel=0.5)
        assert (p.x, p.y, p.level) == (2, 0, 3.5)

    def test_z_coordinate(self):
        assert Point(0, 0, 2.0).z == 2.0 * FLOOR_HEIGHT

    def test_points_are_hashable_and_frozen(self):
        p = Point(1, 2)
        assert hash(p) == hash(Point(1, 2))
        with pytest.raises(Exception):
            p.x = 5

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite)
    def test_distance_identity(self, x, y):
        p = Point(x, y)
        assert p.distance_to(p) == 0.0

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestRect:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)

    def test_zero_area_allowed(self):
        assert Rect(1, 1, 1, 1).area == 0

    def test_center(self):
        c = Rect(0, 0, 4, 2, level=1.0).center
        assert (c.x, c.y, c.level) == (2.0, 1.0, 1.0)

    def test_contains_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(10, 10))
        assert not r.contains(Point(10.1, 5))

    def test_contains_wrong_floor(self):
        r = Rect(0, 0, 10, 10, level=1.0)
        assert not r.contains(Point(5, 5, 0.0))
        assert r.contains(Point(5, 5, 1.0))

    def test_corners_count_and_levels(self):
        r = Rect(0, 0, 2, 2, level=2.0)
        corners = list(r.corners())
        assert len(corners) == 4
        assert all(c.level == 2.0 for c in corners)

    def test_farthest_corner_distance(self):
        r = Rect(0, 0, 6, 8)
        # From the origin corner the farthest corner is (6, 8).
        assert r.farthest_corner_distance(Point(0, 0)) == 10.0

    def test_farthest_corner_from_center(self):
        r = Rect(0, 0, 6, 8)
        assert r.farthest_corner_distance(r.center) == 5.0

    def test_random_interior_point_inside(self):
        import random
        r = Rect(0, 0, 10, 10)
        rng = random.Random(0)
        for _ in range(50):
            assert r.contains(r.random_interior_point(rng))

    def test_random_interior_point_degenerate_falls_to_center(self):
        import random
        r = Rect(0, 0, 0.5, 0.5)
        p = r.random_interior_point(random.Random(0))
        assert (p.x, p.y) == (0.25, 0.25)

    def test_as_tuple(self):
        assert Rect(1, 2, 3, 4).as_tuple() == (1, 2, 3, 4)

    @given(st.floats(0.1, 100), st.floats(0.1, 100), finite, finite)
    def test_farthest_corner_at_least_half_diagonal(self, w, h, x, y):
        r = Rect(0, 0, w, h)
        half_diag = math.hypot(w, h) / 2
        p = Point(min(max(x % w, 0), w), min(max(y % h, 0), h))
        assert r.farthest_corner_distance(p) >= half_diag - 1e-9
